//! The JOSHUA head-node daemon: symmetric active/active replication of an
//! unmodified PBS server via external interception of the PBS interface.
//!
//! Each head node runs one [`JoshuaServer`] process embedding
//!
//! * a [`GroupMember`] (the Transis stand-in) for totally ordered,
//!   virtually synchronous delivery among the active heads, and
//! * an unmodified [`PbsServerCore`] (the TORQUE stand-in) driven purely
//!   through its public command interface.
//!
//! ## Data paths
//!
//! * **User commands** (jsub/jdel/jstat/...) arrive as
//!   [`ClientRequest`]s, are broadcast through the group
//!   ([`Payload::Client`]), applied by *every* replica on delivery, and
//!   answered exactly once: the delivery of a second ordered message
//!   ([`Payload::Output`]) releases the cached reply at the current
//!   responder (the lowest-ranked established member) — the paper's
//!   "output routed through the group communication system for
//!   distributed mutual exclusion".
//! * **Job starts** are dispatched by every replica to the mom, whose
//!   launch prologue requests the **jmutex** through the dispatching
//!   head ([`Payload::JMutexAcquire`]); the first acquire in the total
//!   order wins, so the job runs exactly once and the other attempts are
//!   emulated.
//! * **Obituaries** from moms are lifted into the total order
//!   ([`Payload::MomFinished`]) so replicas and joiners converge.
//! * **Joins** (new or replacement heads, and ejected members rejoining)
//!   receive a state snapshot ordered in-stream ([`Payload::Snapshot`])
//!   and replay everything ordered after it — the paper's "copying the
//!   current state of an active service over to the joining head node".

use crate::config::JoshuaConfig;
use crate::payload::{JMutexOutcome, JMutexState, Payload, ReplicaState};
use crate::persist::{HeadStore, Recovered};
use jrs_gcs::{GcsEvent, GroupMember, Output as GcsOutput, View, Wire};
use jrs_pbs::proc::{ArbiterRelease, ArbiterRequest, ClientReply, ClientRequest};
use jrs_pbs::server::{MomReport, PbsServerCore, ServerAction};
use jrs_pbs::{CmdReply, JobState, MomInbound, ServerCmd};
use jrs_sim::{Ctx, Msg, ProcId, Process, SimDuration, TimerId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Control message: gracefully leave the group and shut down (the paper's
/// voluntary head-node leave, handled as a forced failure via signal).
#[derive(Clone, Copy, Debug)]
pub struct LeaveCmd;

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoshuaStats {
    /// Client commands this head broadcast into the group.
    pub commands_forwarded: u64,
    /// Ordered payloads applied.
    pub payloads_applied: u64,
    /// Replies this head released to clients.
    pub replies_sent: u64,
    /// jmutex grants decided here (as granter).
    pub jmutex_granted: u64,
    /// jmutex denials decided here (as granter).
    pub jmutex_denied: u64,
    /// Snapshots donated.
    pub snapshots_sent: u64,
    /// Snapshots received and installed.
    pub snapshots_installed: u64,
    /// Delta catch-ups donated to recovered joiners.
    pub catch_ups_sent: u64,
    /// Delta catch-ups received and applied.
    pub catch_ups_applied: u64,
    /// Commands appended (and fsynced) to the local WAL.
    pub wal_records: u64,
    /// Full-state snapshots written to the local disk.
    pub snapshots_written: u64,
}

/// How far this replica is from participating in the replicated state.
enum SyncMode {
    /// Full participant: applies every ordered payload on delivery.
    Established,
    /// Joiner awaiting state transfer (snapshot or delta); ordered
    /// payloads are buffered for replay after installation.
    AwaitState(Vec<(u64, Payload)>),
    /// Cold restart after a total-cluster blackout: an initial member
    /// holding recovered local state, buffering ordered payloads until
    /// every member's recovery announcement is in and the group has
    /// agreed whose state is most advanced.
    Reconciling(Vec<(u64, Payload)>),
}

/// Forensics from the durable-state recovery pass, for tests and traces.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Applied-command index restored from snapshot + WAL replay.
    pub recovered_index: u64,
    /// WAL commands replayed on top of the snapshot.
    pub wal_replayed: usize,
    /// A torn WAL tail was truncated to the last valid record.
    pub torn_tail_truncated: bool,
    /// Mid-log corruption at this byte offset; the WAL was quarantined
    /// and only the snapshot was trusted.
    pub corruption_offset: Option<u64>,
    /// Replica fingerprint right after snapshot + WAL replay, before any
    /// live traffic: with an undamaged disk this is bit-identical to the
    /// fingerprint of the life that crashed.
    pub recovered_fingerprint: u64,
}

/// The JOSHUA daemon. See module docs.
pub struct JoshuaServer {
    config: JoshuaConfig,
    group: GroupMember<Payload>,
    pbs: PbsServerCore,
    jmutex: JMutexState,
    /// Per-client duplicate-suppression floor and cached reply.
    applied: BTreeMap<ProcId, (u64, CmdReply)>,
    /// Joiners that still need a snapshot (replicated bookkeeping).
    needs_snapshot: BTreeSet<ProcId>,
    /// Members of the current view that joined with it (not yet
    /// established; excluded from responder duty).
    joined_current: BTreeSet<ProcId>,
    /// Synchronisation state (established / awaiting transfer / cold
    /// reconciliation).
    sync: SyncMode,
    /// Sequence number of the last ordered payload applied.
    last_applied_seq: u64,
    /// Commands applied since genesis — monotonic across restarts (group
    /// sequence numbers reset per incarnation); the WAL key space.
    applied_index: u64,
    /// Recent applied commands for delta donation to recovered joiners.
    ring: VecDeque<(u64, Payload)>,
    /// Unresolved recovery announcements `member → (index, fingerprint)`
    /// (replicated bookkeeping, mirrored into donated state).
    hellos: BTreeMap<ProcId, (u64, u64)>,
    /// Durable storage, when persistence is enabled.
    store: Option<HeadStore>,
    /// True while replaying recovered/donated history: suppresses the
    /// externally visible side effects (mom dispatch, output release,
    /// verdicts) that the pre-crash life already performed.
    replaying: bool,
    /// After a recovery, re-drive mom dispatch once established.
    resync_pending: bool,
    /// Last incarnation written to the meta file (persist on change).
    persisted_incarnation: u64,
    /// What recovery found (None until `on_start`, or without a store).
    recovery: Option<RecoveryReport>,
    /// Payloads whose broadcast is delayed by a modelled CPU cost
    /// (interception, PBS command processing); keyed by timer tag.
    deferred: BTreeMap<u64, Payload>,
    /// Witness obituaries: re-broadcast after a grace period unless the
    /// job completed in the meantime.
    witness: BTreeMap<u64, Payload>,
    next_tag: u64,
    stats: JoshuaStats,
}

impl JoshuaServer {
    /// Create a daemon. `initial_heads` is the static bootstrap member
    /// list (all initial heads configured identically); a process not in
    /// the list joins through them instead.
    pub fn new(me: ProcId, config: JoshuaConfig, initial_heads: Vec<ProcId>) -> Self {
        let group = GroupMember::new(me, config.group.clone(), initial_heads.clone());
        let pbs = Self::fresh_pbs(&config, me);
        let store = config.persist.enabled.then(HeadStore::new);
        // With a durable store, even an initial member defers establishment
        // to `on_start` recovery + reconciliation (it may hold state from a
        // previous life, and so may its peers). Diskless initial members
        // are established immediately, as in the paper.
        let sync = if !initial_heads.contains(&me) {
            SyncMode::AwaitState(Vec::new())
        } else if store.is_some() {
            SyncMode::Reconciling(Vec::new())
        } else {
            SyncMode::Established
        };
        JoshuaServer {
            config,
            group,
            pbs,
            jmutex: JMutexState::new(),
            applied: BTreeMap::new(),
            needs_snapshot: BTreeSet::new(),
            joined_current: BTreeSet::new(),
            sync,
            last_applied_seq: 0,
            applied_index: 0,
            ring: VecDeque::new(),
            hellos: BTreeMap::new(),
            store,
            replaying: false,
            resync_pending: false,
            persisted_incarnation: 0,
            recovery: None,
            deferred: BTreeMap::new(),
            witness: BTreeMap::new(),
            next_tag: 1,
            stats: JoshuaStats::default(),
        }
    }

    fn fresh_pbs(config: &JoshuaConfig, me: ProcId) -> PbsServerCore {
        let mut pbs = PbsServerCore::new(
            format!("joshua-{me}"),
            config.nodes.iter().map(|(n, _)| n.clone()),
            config.policy.make(),
        );
        for (node, mom) in &config.nodes {
            pbs.register_mom(node, *mom);
        }
        pbs
    }

    // ------------------------------------------------------------------
    // Introspection (tests, experiments)
    // ------------------------------------------------------------------

    /// The embedded PBS server.
    pub fn pbs(&self) -> &PbsServerCore {
        &self.pbs
    }

    /// The group membership view.
    pub fn view(&self) -> &View {
        self.group.view()
    }

    /// Counters.
    pub fn stats(&self) -> JoshuaStats {
        self.stats
    }

    /// Group-layer counters.
    pub fn group_stats(&self) -> jrs_gcs::GroupStats {
        self.group.stats()
    }

    /// Is this head fully established (installed and state-transferred)?
    pub fn is_established(&self) -> bool {
        self.group.is_installed() && matches!(self.sync, SyncMode::Established)
    }

    /// The jmutex table (tests).
    pub fn jmutex(&self) -> &JMutexState {
        &self.jmutex
    }

    /// Commands applied since genesis (monotonic across restarts).
    pub fn applied_index(&self) -> u64 {
        self.applied_index
    }

    /// Deterministic fingerprint of the replicated state. Equal on every
    /// established replica at quiescence; recovery announcements carry it
    /// so equal indices can be cross-checked.
    pub fn state_fingerprint(&self) -> u64 {
        jrs_sim::fingerprint(&(
            self.pbs.state_hash(),
            self.jmutex.state_hash(),
            self.applied_index,
        ))
    }

    /// What the durable-state recovery pass found (None before `on_start`
    /// or when persistence is disabled).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// The member responsible for client-visible output: the lowest-ranked
    /// member of the current view that did not just join (so it certainly
    /// holds full state). Deterministic at every replica by virtue of
    /// virtual synchrony.
    fn responder(&self) -> Option<ProcId> {
        self.group
            .view()
            .members
            .iter()
            .copied()
            .find(|m| !self.joined_current.contains(m))
            .or_else(|| self.group.view().leader())
    }

    fn is_responder(&self) -> bool {
        self.responder() == Some(self.group.me())
    }

    /// Transmit group frames, modelling serial CPU cost per frame. The
    /// cost depends on the frame class: protocol frames pay the full
    /// daemon processing cost, stability acknowledgements pay the (slower,
    /// timer-batched) ack-path cost, and background datagrams / bare link
    /// acks are nearly free. Calibration table in EXPERIMENTS.md.
    fn flush_gcs(&mut self, ctx: &mut Ctx<'_>, out: GcsOutput<Payload>) {
        use jrs_gcs::{EngineMsg, GcsMsg};
        let mut busy = SimDuration::ZERO;
        let cost = &self.config.cost;
        for (to, frame, bytes) in out.wire {
            // Exhaustive over the wire protocol: a new frame kind must be
            // assigned a CPU cost here, not silently inherit one (F004).
            busy += match &frame {
                Wire::Ack { .. } => cost.gcs_background_delay,
                Wire::Raw(m) => match m {
                    GcsMsg::Heartbeat { .. } | GcsMsg::JoinReq { .. } => {
                        cost.gcs_background_delay
                    }
                    GcsMsg::Leave
                    | GcsMsg::FlushReq { .. }
                    | GcsMsg::FlushInfo { .. }
                    | GcsMsg::FlushFinal { .. }
                    | GcsMsg::FlushAbort { .. }
                    | GcsMsg::InstallAck { .. }
                    | GcsMsg::Engine { .. } => cost.gcs_frame_delay,
                },
                Wire::Data { msg, .. } => match msg {
                    GcsMsg::Engine { msg: EngineMsg::Ack { .. }, .. } => cost.gcs_ack_delay,
                    GcsMsg::Engine {
                        msg:
                            EngineMsg::Request { .. }
                            | EngineMsg::Ordered(_)
                            | EngineMsg::Stable { .. }
                            | EngineMsg::Token { .. },
                        ..
                    } => cost.gcs_frame_delay,
                    GcsMsg::Heartbeat { .. }
                    | GcsMsg::JoinReq { .. }
                    | GcsMsg::Leave
                    | GcsMsg::FlushReq { .. }
                    | GcsMsg::FlushInfo { .. }
                    | GcsMsg::FlushFinal { .. }
                    | GcsMsg::FlushAbort { .. }
                    | GcsMsg::InstallAck { .. } => cost.gcs_frame_delay,
                },
            };
            ctx.send_sized_after(to, frame, bytes, busy);
        }
        for ev in out.events {
            self.on_gcs_event(ctx, ev);
        }
        // Persist the group incarnation whenever it advances, so a future
        // restart rejoins with one the survivors will not ignore.
        let inc = self.group.incarnation();
        if inc != self.persisted_incarnation {
            if let Some(store) = &self.store {
                let now = ctx.now();
                store.save_incarnation(ctx.disk_mut(), now, inc);
            }
            self.persisted_incarnation = inc;
        }
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let out = self.group.broadcast(ctx.now(), payload);
        self.flush_gcs(ctx, out);
    }

    /// Broadcast `payload` after a modelled CPU delay (the work that
    /// produces it). Keeps cost serialization correct even for the
    /// single-head case where self-delivery is synchronous.
    fn defer_broadcast(&mut self, ctx: &mut Ctx<'_>, payload: Payload, delay: SimDuration) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.deferred.insert(tag, payload);
        ctx.set_timer(delay, tag);
    }

    /// Witness duty for an obituary: re-broadcast after a grace period
    /// unless the completion became visible in the replicated state.
    fn defer_witness(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.witness.insert(tag, payload);
        ctx.set_timer(SimDuration::from_secs(2), tag);
    }

    fn on_gcs_event(&mut self, ctx: &mut Ctx<'_>, ev: GcsEvent<Payload>) {
        match ev {
            GcsEvent::Deliver { seq, payload, .. } => {
                match &mut self.sync {
                    SyncMode::Established => {}
                    SyncMode::AwaitState(buf) | SyncMode::Reconciling(buf) => {
                        // Not yet established: buffer everything except
                        // the synchronisation control traffic itself —
                        // state transfers addressed to us, and recovery
                        // announcements (which drive reconciliation).
                        let me = ctx.me();
                        let is_control = match &payload {
                            Payload::Snapshot { targets, .. }
                            | Payload::CatchUp { targets, .. } => targets.contains(&me),
                            Payload::Hello { .. } => true,
                            // Every other payload is ordinary command
                            // traffic; name them so a future control
                            // variant must be classified here (F004).
                            Payload::Client { .. }
                            | Payload::Output { .. }
                            | Payload::MomFinished { .. }
                            | Payload::JMutexAcquire { .. }
                            | Payload::JMutexRelease { .. } => false,
                        };
                        if !is_control {
                            buf.push((seq, payload));
                            return;
                        }
                    }
                }
                self.apply(ctx, seq, payload);
            }
            GcsEvent::ViewChange { view, joined, left } => {
                self.on_view_change(ctx, view, joined, left);
            }
            GcsEvent::Ejected => self.on_ejected(ctx),
        }
    }

    // ------------------------------------------------------------------
    // Ordered payload application
    // ------------------------------------------------------------------

    fn apply(&mut self, ctx: &mut Ctx<'_>, seq: u64, payload: Payload) {
        self.stats.payloads_applied += 1;
        self.last_applied_seq = seq;
        match payload {
            p @ (Payload::Client { .. }
            | Payload::MomFinished { .. }
            | Payload::JMutexAcquire { .. }
            | Payload::JMutexRelease { .. }) => {
                // The four state-machine commands: numbered, logged,
                // applied. Everything else is control traffic and is
                // neither counted nor persisted.
                self.apply_command(ctx, p, true);
            }
            Payload::Hello { member, applied_index, fingerprint } => {
                self.on_hello(ctx, member, applied_index, fingerprint);
            }
            Payload::CatchUp { targets, as_of_seq, entries } => {
                self.on_catch_up(ctx, targets, as_of_seq, entries);
            }
            Payload::Output { client, req_id } => {
                if self.is_responder() {
                    if let Some((applied_id, reply)) = self.applied.get(&client) {
                        if *applied_id == req_id {
                            let reply = reply.clone();
                            self.stats.replies_sent += 1;
                            ctx.send_after(
                                client,
                                ClientReply { req_id, reply },
                                self.config.cost.intercept_overhead,
                            );
                        }
                    }
                }
            }
            Payload::Snapshot { targets, as_of_seq, state } => {
                // An already-established target must not rewind to an
                // older snapshot (possible when two donors overlapped).
                if targets.contains(&ctx.me()) && !matches!(self.sync, SyncMode::Established) {
                    self.install_snapshot(ctx, as_of_seq, *state);
                }
                for t in &targets {
                    self.needs_snapshot.remove(t);
                    self.joined_current.remove(t);
                    self.hellos.remove(t);
                }
            }
        }
    }

    /// Apply one of the four replicated state-machine commands: number it,
    /// persist it to the WAL (fsynced before any effect escapes), remember
    /// it for delta donation, then run the state transition. `log` is
    /// false only when replaying records that are already in the WAL.
    fn apply_command(&mut self, ctx: &mut Ctx<'_>, payload: Payload, log: bool) {
        self.applied_index += 1;
        let idx = self.applied_index;
        if log {
            if let Some(store) = &self.store {
                let now = ctx.now();
                if store.log_command(ctx.disk_mut(), now, idx, &payload) {
                    self.stats.wal_records += 1;
                }
            }
        }
        self.remember(idx, payload.clone());
        match payload {
            Payload::Client { client, req_id, cmd } => {
                self.apply_client(ctx, client, req_id, cmd);
            }
            Payload::MomFinished { job, exit, .. } => {
                let actions = self.pbs.on_report(ctx.now(), &MomReport::Finished { job, exit });
                self.dispatch(ctx, actions, SimDuration::ZERO);
            }
            Payload::JMutexAcquire { job, mom, session, granter, reclaim } => {
                let outcome = self.jmutex.acquire(job, mom, session, granter, reclaim);
                // The forwarding head sends the verdict; if it died while
                // the acquire was in flight, the responder covers for it
                // (deterministic: every replica sees the same view).
                let sender = if self.view().contains(granter) {
                    granter
                } else {
                    self.responder().unwrap_or(granter)
                };
                if sender == ctx.me() && !self.replaying {
                    let granted = outcome == JMutexOutcome::Granted;
                    if granted {
                        self.stats.jmutex_granted += 1;
                    } else {
                        self.stats.jmutex_denied += 1;
                    }
                    ctx.send(mom, MomInbound::Verdict { job, session, granted });
                }
            }
            Payload::JMutexRelease { job } => {
                self.jmutex.release(job);
            }
            // apply() routes only the four command payloads here; the
            // control payloads are consumed before numbering. Name them
            // (instead of `_`) so a new replicated command cannot be
            // silently dropped by this match (F004).
            Payload::Output { .. }
            | Payload::Snapshot { .. }
            | Payload::Hello { .. }
            | Payload::CatchUp { .. } => {}
        }
        if log {
            self.maybe_snapshot(ctx, idx);
        }
    }

    /// Keep a command in the bounded donation ring.
    fn remember(&mut self, idx: u64, payload: Payload) {
        self.ring.push_back((idx, payload));
        while self.ring.len() > self.config.persist.ring_capacity {
            self.ring.pop_front();
        }
    }

    /// Write a periodic full-state snapshot (bounds WAL replay time).
    fn maybe_snapshot(&mut self, ctx: &mut Ctx<'_>, idx: u64) {
        let every = self.config.persist.snapshot_every;
        if self.store.is_none() || every == 0 || !idx.is_multiple_of(every) {
            return;
        }
        let state = self.current_state();
        if let Some(store) = &self.store {
            let now = ctx.now();
            if store.save_snapshot(ctx.disk_mut(), now, idx, &state) {
                self.stats.snapshots_written += 1;
            }
        }
    }

    /// The full replicated state as it stands, for donation and snapshots.
    fn current_state(&self) -> ReplicaState {
        ReplicaState {
            pbs: self.pbs.snapshot(),
            jmutex: self.jmutex.clone(),
            applied: self
                .applied
                .iter()
                .map(|(c, (id, r))| (*c, *id, r.clone()))
                .collect(),
            needs_snapshot: self.needs_snapshot.iter().copied().collect(),
            applied_index: self.applied_index,
            hellos: self
                .hellos
                .iter()
                .map(|(m, (i, f))| (*m, *i, *f))
                .collect(),
        }
    }

    fn apply_client(&mut self, ctx: &mut Ctx<'_>, client: ProcId, req_id: u64, cmd: ServerCmd) {
        let floor = self.applied.get(&client).map(|(id, _)| *id).unwrap_or(0);
        if req_id <= floor {
            // Duplicate (client retried through another head). Re-release
            // the cached output if it is the same request.
            if req_id == floor && self.is_responder() && !self.replaying {
                let delay = self.config.cost.intercept_overhead;
                self.defer_broadcast(ctx, Payload::Output { client, req_id }, delay);
            }
            return;
        }
        let cost = self.config.cost.pbs.cost_of(&cmd);
        let (reply, actions) = self.pbs.apply(ctx.now(), &cmd);
        self.applied.insert(client, (req_id, reply));
        self.dispatch(ctx, actions, cost);
        if self.is_responder() && !self.replaying {
            // Second ordering round, once the PBS server has produced the
            // output: agree on its release.
            self.defer_broadcast(ctx, Payload::Output { client, req_id }, cost);
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, actions: Vec<ServerAction>, delay: SimDuration) {
        if self.replaying {
            // Recovery replay: the pre-crash life already dispatched these
            // (and what it did not, `resync` re-drives once established).
            return;
        }
        let me = ctx.me();
        for a in actions {
            match a {
                ServerAction::Start { mom, job, spec, nodes } => {
                    if let Some(mom) = mom {
                        let msg = MomInbound::Start {
                            job,
                            spec,
                            nodes,
                            server: me,
                            arbiter: Some(me),
                        };
                        ctx.send_after(mom, msg, delay + self.config.cost.pbs.dispatch_processing);
                    }
                }
                ServerAction::Cancel { mom, job } => {
                    if let Some(mom) = mom {
                        ctx.send_after(
                            mom,
                            MomInbound::Cancel { job, server: me },
                            delay + self.config.cost.pbs.dispatch_processing,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn on_view_change(
        &mut self,
        ctx: &mut Ctx<'_>,
        view: View,
        joined: Vec<ProcId>,
        left: Vec<ProcId>,
    ) {
        self.joined_current = joined.iter().copied().collect();
        for j in &joined {
            // A (re)joiner announces itself afresh below; any announcement
            // recorded under its id belongs to a previous life.
            self.hellos.remove(j);
            if *j != ctx.me() {
                self.needs_snapshot.insert(*j);
            }
        }
        for l in &left {
            self.hellos.remove(l);
        }
        if joined.contains(&ctx.me()) {
            // We are the (re)joiner: await state, then announce what our
            // disk vouched for (index 0 when diskless or empty) so the
            // donor can ship a delta instead of a full snapshot.
            if matches!(self.sync, SyncMode::Established) {
                self.sync = SyncMode::AwaitState(Vec::new());
            }
            // Register with the moms for future obituaries.
            for (_, mom) in self.config.nodes.clone() {
                ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
            }
            let hello = Payload::Hello {
                member: ctx.me(),
                applied_index: self.applied_index,
                fingerprint: self.state_fingerprint(),
            };
            self.broadcast(ctx, hello);
            return;
        }
        if matches!(self.sync, SyncMode::Reconciling(_)) {
            // A cold-restart participant died mid-reconciliation (possibly
            // the chosen reference): re-resolve over the shrunken view.
            self.try_resolve(ctx);
            return;
        }
        // Verdict redelivery: outstanding launch grants whose granter
        // left can never reach their mom — the responder re-sends them.
        // Idempotent at the mom (a running/done job ignores late grants).
        if self.is_responder() && matches!(self.sync, SyncMode::Established) {
            let lost: Vec<(jrs_pbs::JobId, crate::payload::Grant)> = self
                .jmutex
                .grants()
                .filter(|(_, g)| !view.contains(g.granter))
                .collect();
            for (job, g) in lost {
                ctx.send(
                    g.mom,
                    MomInbound::Verdict { job, session: g.session, granted: true },
                );
            }
        }
        // Donor duty is announcement-triggered (`on_hello`); the view
        // change only re-donates to joiners whose announcement was already
        // ordered but whose donor died before the donation was (otherwise
        // they would wait forever).
        if self.is_responder() && matches!(self.sync, SyncMode::Established) {
            let orphans: Vec<ProcId> = self
                .needs_snapshot
                .iter()
                .copied()
                .filter(|t| self.hellos.contains_key(t))
                .collect();
            if !orphans.is_empty() {
                self.donate(ctx, orphans);
            }
        }
        let _ = view;
    }

    /// A recovery announcement was ordered: record it and either advance
    /// cold-restart reconciliation or (when established and on donor duty)
    /// ship the joiner the state it is missing.
    fn on_hello(&mut self, ctx: &mut Ctx<'_>, member: ProcId, applied_index: u64, fingerprint: u64) {
        self.hellos.insert(member, (applied_index, fingerprint));
        match self.sync {
            SyncMode::Reconciling(_) => self.try_resolve(ctx),
            SyncMode::Established => {
                if member != ctx.me()
                    && self.is_responder()
                    && self.needs_snapshot.contains(&member)
                {
                    self.donate(ctx, vec![member]);
                }
            }
            SyncMode::AwaitState(_) => {}
        }
    }

    /// Cold-restart reconciliation: once every member of the view has
    /// announced its recovered index, agree (deterministically, at every
    /// replica) whose state is the reference. Members matching it resume;
    /// the reference donates the laggards their missing delta.
    fn try_resolve(&mut self, ctx: &mut Ctx<'_>) {
        if !self.group.is_installed() {
            return;
        }
        let members = self.view().members.clone();
        if members.is_empty() || !members.iter().all(|m| self.hellos.contains_key(m)) {
            return;
        }
        // Reference: the most advanced announced index; the membership
        // list is identical at every replica, so first-wins is a
        // deterministic tie break.
        let mut ref_member = members[0];
        let mut ref_idx = 0u64;
        let mut ref_fp = 0u64;
        let mut first = true;
        for m in &members {
            let (i, f) = self.hellos[m];
            if first || i > ref_idx {
                ref_member = *m;
                ref_idx = i;
                ref_fp = f;
                first = false;
            }
        }
        let resolution_seq = self.last_applied_seq;
        let matches_ref = |(i, f): (u64, u64)| i == ref_idx && f == ref_fp;
        let laggards: Vec<ProcId> = members
            .iter()
            .copied()
            .filter(|m| !matches_ref(self.hellos[m]))
            .collect();
        let me_matches = matches_ref(self.hellos[&ctx.me()]);
        for m in &members {
            if matches_ref(self.hellos[m]) {
                self.hellos.remove(m);
            }
        }
        for l in &laggards {
            self.needs_snapshot.insert(*l);
        }
        if me_matches {
            self.establish(ctx, resolution_seq);
        }
        if !laggards.is_empty() && ref_member == ctx.me() {
            self.donate(ctx, laggards);
        }
    }

    /// Ship state to `targets` (all of which have announced an index via
    /// [`Payload::Hello`]): a delta of recent commands when the donation
    /// ring still covers the most lagging target, else a full snapshot.
    fn donate(&mut self, ctx: &mut Ctx<'_>, targets: Vec<ProcId>) {
        let as_of_seq = self.last_applied_seq;
        let min_idx = targets
            .iter()
            .filter_map(|t| self.hellos.get(t).map(|(i, _)| *i))
            .min()
            .unwrap_or(0);
        // A fresh joiner (index 0, no recovered state) always gets the full
        // snapshot — replaying the whole history as a delta would be both
        // slower and indistinguishable from state divergence.
        let delta_ok = min_idx > 0 && targets.iter().all(|t| match self.hellos.get(t) {
            // A target at our own index must also match our state
            // (divergence at equal index needs the full overwrite).
            Some((i, f)) => {
                *i < self.applied_index
                    || (*i == self.applied_index && *f == self.state_fingerprint())
            }
            None => false,
        }) && (min_idx == self.applied_index
            || self.ring.front().is_some_and(|(i, _)| *i <= min_idx + 1));
        if delta_ok {
            let entries: Vec<(u64, Payload)> = self
                .ring
                .iter()
                .filter(|(i, _)| *i > min_idx)
                .cloned()
                .collect();
            self.stats.catch_ups_sent += 1;
            self.broadcast(ctx, Payload::CatchUp { targets, as_of_seq, entries });
        } else {
            let state = self.current_state();
            self.stats.snapshots_sent += 1;
            self.broadcast(
                ctx,
                Payload::Snapshot { targets, as_of_seq, state: Box::new(state) },
            );
        }
    }

    /// A delta donation was ordered. Targets replay the entries their
    /// recovered state is missing (side effects suppressed — the donor
    /// replicas performed them live) and resume; every replica clears the
    /// targets' transfer bookkeeping.
    fn on_catch_up(
        &mut self,
        ctx: &mut Ctx<'_>,
        targets: Vec<ProcId>,
        as_of_seq: u64,
        entries: Vec<(u64, Payload)>,
    ) {
        if targets.contains(&ctx.me()) && !matches!(self.sync, SyncMode::Established) {
            self.stats.catch_ups_applied += 1;
            self.replaying = true;
            for (idx, payload) in entries {
                if idx == self.applied_index + 1 {
                    self.apply_command(ctx, payload, true);
                }
            }
            self.replaying = false;
            self.establish(ctx, as_of_seq);
        }
        for t in &targets {
            self.needs_snapshot.remove(t);
            self.joined_current.remove(t);
            self.hellos.remove(t);
        }
    }

    fn install_snapshot(&mut self, ctx: &mut Ctx<'_>, as_of_seq: u64, state: ReplicaState) {
        self.stats.snapshots_installed += 1;
        self.pbs.restore(&state.pbs);
        self.jmutex = state.jmutex;
        self.applied = state
            .applied
            .into_iter()
            .map(|(c, id, r)| (c, (id, r)))
            .collect();
        self.needs_snapshot = state.needs_snapshot.into_iter().collect();
        self.needs_snapshot.remove(&ctx.me());
        self.applied_index = state.applied_index;
        self.hellos = state
            .hellos
            .into_iter()
            .map(|(m, i, f)| (m, (i, f)))
            .collect();
        // Whatever the ring held belongs to a state we just discarded.
        self.ring.clear();
        self.establish(ctx, as_of_seq);
        // Anchor the adopted state on disk: our WAL has a gap between our
        // old index and the donor's, so a later crash must recover from
        // this snapshot, not from the log alone.
        if self.store.is_some() {
            let idx = self.applied_index;
            let state = self.current_state();
            if let Some(store) = &self.store {
                let now = ctx.now();
            if store.save_snapshot(ctx.disk_mut(), now, idx, &state) {
                    self.stats.snapshots_written += 1;
                }
            }
        }
    }

    /// Leave the buffering mode: replay everything ordered after the state
    /// we now hold, then resume live participation.
    fn establish(&mut self, ctx: &mut Ctx<'_>, as_of_seq: u64) {
        let buffered = match std::mem::replace(&mut self.sync, SyncMode::Established) {
            SyncMode::AwaitState(b) | SyncMode::Reconciling(b) => b,
            SyncMode::Established => Vec::new(),
        };
        for (seq, payload) in buffered {
            if seq > as_of_seq {
                self.apply(ctx, seq, payload);
            }
        }
        self.last_applied_seq = self.last_applied_seq.max(as_of_seq);
        if self.resync_pending {
            self.resync(ctx);
        }
    }

    /// After a recovery, nudge the world back into motion: re-send mom
    /// dispatches for jobs the pre-crash life had in flight. Idempotent at
    /// the mom — a job it still runs yields a progress report, one that
    /// died with it launches afresh (the jmutex re-grants to the same
    /// mom). Queued jobs need no kick: scheduling runs deterministically
    /// inside command application at every replica.
    fn resync(&mut self, ctx: &mut Ctx<'_>) {
        self.resync_pending = false;
        let me = ctx.me();
        let snap = self.pbs.snapshot();
        for job in &snap.jobs {
            let mom = job
                .allocated
                .first()
                .and_then(|node| self.config.nodes.iter().find(|(n, _)| n == node))
                .map(|(_, m)| *m);
            let Some(mom) = mom else { continue };
            match job.state {
                JobState::Running => {
                    let msg = MomInbound::Start {
                        job: job.id,
                        spec: job.spec.clone(),
                        nodes: job.allocated.clone(),
                        server: me,
                        arbiter: Some(me),
                    };
                    ctx.send(mom, msg);
                }
                JobState::Exiting => {
                    ctx.send(mom, MomInbound::Cancel { job: job.id, server: me });
                }
                _ => {}
            }
        }
    }

    /// Install what the local disk vouched for (called before joining the
    /// group, so nothing here is externally visible).
    fn adopt_recovery(&mut self, ctx: &mut Ctx<'_>, rec: Recovered) {
        let mut report = RecoveryReport {
            torn_tail_truncated: rec.torn_tail_truncated,
            corruption_offset: rec.corruption_offset,
            ..RecoveryReport::default()
        };
        // Rejoin with a strictly greater incarnation than any we ever
        // announced, so peers do not mistake us for our dead predecessor.
        self.group.adopt_incarnation(rec.incarnation + 1);
        let have_state = rec.state.is_some();
        if let Some(state) = rec.state {
            self.pbs.restore(&state.pbs);
            self.jmutex = state.jmutex;
            self.applied = state
                .applied
                .into_iter()
                .map(|(c, id, r)| (c, (id, r)))
                .collect();
            self.applied_index = state.applied_index;
        }
        // Membership bookkeeping from the previous life is stale by
        // construction — everyone re-announces; donors re-derive needs.
        self.needs_snapshot.clear();
        self.hellos.clear();
        // Replay the log on top. Entries at or below the snapshot index
        // only rebuild the donation ring; later ones re-run the state
        // machine with side effects suppressed (the pre-crash life
        // already performed them; `resync` re-drives what it did not).
        let snap_index = self.applied_index;
        self.replaying = true;
        let mut prev: Option<u64> = None;
        for (idx, payload) in rec.entries {
            if let Some(p) = prev {
                if idx != p + 1 {
                    // Index gap (an ejection rewound the key space): the
                    // ring must only ever hold a contiguous run.
                    self.ring.clear();
                }
            }
            prev = Some(idx);
            if idx <= snap_index {
                self.remember(idx, payload);
            } else if idx == self.applied_index + 1 {
                self.apply_command(ctx, payload, false);
                report.wal_replayed += 1;
            } else {
                // Unreachable history beyond a gap: drop it.
                self.ring.clear();
                prev = None;
            }
        }
        self.replaying = false;
        report.recovered_index = self.applied_index;
        report.recovered_fingerprint = self.state_fingerprint();
        self.resync_pending = have_state || self.applied_index > 0;
        self.recovery = Some(report);
    }

    fn on_ejected(&mut self, ctx: &mut Ctx<'_>) {
        // Total state reset; the group layer rejoins automatically and a
        // snapshot will arrive after the next view change.
        self.pbs = Self::fresh_pbs(&self.config, ctx.me());
        self.jmutex = JMutexState::new();
        self.applied.clear();
        self.needs_snapshot.clear();
        self.joined_current.clear();
        self.sync = SyncMode::AwaitState(Vec::new());
        self.last_applied_seq = 0;
        self.applied_index = 0;
        self.ring.clear();
        self.hellos.clear();
        self.replaying = false;
        self.resync_pending = false;
    }
}

impl Process for JoshuaServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Recover whatever the local disk vouches for *before* joining:
        // the announced index and incarnation depend on it.
        if let Some(store) = self.store.take() {
            let rec = store.recover(ctx.disk_mut());
            self.store = Some(store);
            self.adopt_recovery(ctx, rec);
        }
        let out = self.group.start(ctx.now());
        self.flush_gcs(ctx, out);
        let tick = self.config.group.tick_every;
        ctx.set_timer(tick, 0);
        // Initial members register with the moms right away.
        if self.group.is_installed() {
            for (_, mom) in self.config.nodes.clone() {
                ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
            }
            // Cold restart: announce the recovered state so the bootstrap
            // group can agree whose is the reference (non-initial members
            // announce on their join view change instead).
            if self.store.is_some() {
                let hello = Payload::Hello {
                    member: ctx.me(),
                    applied_index: self.applied_index,
                    fingerprint: self.state_fingerprint(),
                };
                self.broadcast(ctx, hello);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
        // Group traffic from peer daemons. Single fallible downcast (the
        // Err arm hands the box back) instead of check-then-expect (F003).
        let msg = match msg.downcast::<Wire<Payload>>() {
            Ok(frame) => {
                let now = ctx.now();
                let out = self.group.on_wire(now, from, *frame);
                self.flush_gcs(ctx, out);
                return;
            }
            Err(msg) => msg,
        };
        // Intercepted PBS user command.
        if let Some(req) = msg.downcast_ref::<ClientRequest>() {
            self.stats.commands_forwarded += 1;
            let payload = Payload::Client {
                client: req.client,
                req_id: req.req_id,
                cmd: req.cmd.clone(),
            };
            // Interception cost (jsub → joshua local round), then order.
            let delay = self.config.cost.intercept_overhead;
            self.defer_broadcast(ctx, payload, delay);
            return;
        }
        // Obituaries and other mom reports.
        if let Some(report) = msg.downcast_ref::<MomReport>() {
            if let MomReport::Finished { job, exit } = report {
                // Lift into the total order. Only the responder broadcasts
                // immediately (every head receives the same report from
                // the mom); the others act as witnesses, re-broadcasting
                // after a grace period if the completion never appears —
                // covering a responder that died holding the report.
                let p = Payload::MomFinished { job: *job, exit: *exit, mom: from };
                if self.is_responder() {
                    self.broadcast(ctx, p);
                } else {
                    self.defer_witness(ctx, p);
                }
            }
            return;
        }
        // jmutex protocol from mom launch prologues.
        if let Some(req) = msg.downcast_ref::<ArbiterRequest>() {
            let p = Payload::JMutexAcquire {
                job: req.job,
                mom: req.mom,
                session: req.session,
                granter: ctx.me(),
                reclaim: req.reclaim,
            };
            self.broadcast(ctx, p);
            return;
        }
        if let Some(rel) = msg.downcast_ref::<ArbiterRelease>() {
            let p = Payload::JMutexRelease { job: rel.job };
            self.broadcast(ctx, p);
            return;
        }
        // Administrative shutdown (voluntary leave).
        if msg.downcast_ref::<LeaveCmd>().is_some() {
            let out = self.group.leave(ctx.now());
            self.flush_gcs(ctx, out);
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        if tag == 0 {
            let out = self.group.tick(ctx.now());
            self.flush_gcs(ctx, out);
            let tick = self.config.group.tick_every;
            ctx.set_timer(tick, 0);
            return;
        }
        if let Some(payload) = self.deferred.remove(&tag) {
            self.broadcast(ctx, payload);
            return;
        }
        if let Some(payload) = self.witness.remove(&tag) {
            let still_needed = match &payload {
                Payload::MomFinished { job, .. } => self
                    .pbs
                    .job(*job)
                    .map(|j| j.state != jrs_pbs::JobState::Complete)
                    .unwrap_or(false),
                // Witness duty exists only for obituaries today; name the
                // rest so a future witnessed payload must decide its
                // re-broadcast condition here (F004).
                Payload::Client { .. }
                | Payload::Output { .. }
                | Payload::JMutexAcquire { .. }
                | Payload::JMutexRelease { .. }
                | Payload::Snapshot { .. }
                | Payload::Hello { .. }
                | Payload::CatchUp { .. } => false,
            };
            if still_needed {
                self.broadcast(ctx, payload);
            }
        }
    }
}
