//! The JOSHUA head-node daemon: symmetric active/active replication of an
//! unmodified PBS server via external interception of the PBS interface.
//!
//! Each head node runs one [`JoshuaServer`] process embedding
//!
//! * a [`GroupMember`] (the Transis stand-in) for totally ordered,
//!   virtually synchronous delivery among the active heads, and
//! * an unmodified [`PbsServerCore`] (the TORQUE stand-in) driven purely
//!   through its public command interface.
//!
//! ## Data paths
//!
//! * **User commands** (jsub/jdel/jstat/...) arrive as
//!   [`ClientRequest`]s, are broadcast through the group
//!   ([`Payload::Client`]), applied by *every* replica on delivery, and
//!   answered exactly once: the delivery of a second ordered message
//!   ([`Payload::Output`]) releases the cached reply at the current
//!   responder (the lowest-ranked established member) — the paper's
//!   "output routed through the group communication system for
//!   distributed mutual exclusion".
//! * **Job starts** are dispatched by every replica to the mom, whose
//!   launch prologue requests the **jmutex** through the dispatching
//!   head ([`Payload::JMutexAcquire`]); the first acquire in the total
//!   order wins, so the job runs exactly once and the other attempts are
//!   emulated.
//! * **Obituaries** from moms are lifted into the total order
//!   ([`Payload::MomFinished`]) so replicas and joiners converge.
//! * **Joins** (new or replacement heads, and ejected members rejoining)
//!   receive a state snapshot ordered in-stream ([`Payload::Snapshot`])
//!   and replay everything ordered after it — the paper's "copying the
//!   current state of an active service over to the joining head node".

use crate::config::JoshuaConfig;
use crate::payload::{JMutexOutcome, JMutexState, Payload, ReplicaState};
use jrs_gcs::{GcsEvent, GroupMember, Output as GcsOutput, View, Wire};
use jrs_pbs::proc::{ArbiterRelease, ArbiterRequest, ClientReply, ClientRequest};
use jrs_pbs::server::{MomReport, PbsServerCore, ServerAction};
use jrs_pbs::{CmdReply, MomInbound, ServerCmd};
use jrs_sim::{Ctx, Msg, ProcId, Process, SimDuration, TimerId};
use std::collections::{BTreeMap, BTreeSet};

/// Control message: gracefully leave the group and shut down (the paper's
/// voluntary head-node leave, handled as a forced failure via signal).
#[derive(Clone, Copy, Debug)]
pub struct LeaveCmd;

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoshuaStats {
    /// Client commands this head broadcast into the group.
    pub commands_forwarded: u64,
    /// Ordered payloads applied.
    pub payloads_applied: u64,
    /// Replies this head released to clients.
    pub replies_sent: u64,
    /// jmutex grants decided here (as granter).
    pub jmutex_granted: u64,
    /// jmutex denials decided here (as granter).
    pub jmutex_denied: u64,
    /// Snapshots donated.
    pub snapshots_sent: u64,
    /// Snapshots received and installed.
    pub snapshots_installed: u64,
}

/// The JOSHUA daemon. See module docs.
pub struct JoshuaServer {
    config: JoshuaConfig,
    group: GroupMember<Payload>,
    pbs: PbsServerCore,
    jmutex: JMutexState,
    /// Per-client duplicate-suppression floor and cached reply.
    applied: BTreeMap<ProcId, (u64, CmdReply)>,
    /// Joiners that still need a snapshot (replicated bookkeeping).
    needs_snapshot: BTreeSet<ProcId>,
    /// Members of the current view that joined with it (not yet
    /// established; excluded from responder duty).
    joined_current: BTreeSet<ProcId>,
    /// `Some(buffer)` while we await our own snapshot.
    awaiting: Option<Vec<(u64, Payload)>>,
    /// Sequence number of the last ordered payload applied.
    last_applied_seq: u64,
    /// Payloads whose broadcast is delayed by a modelled CPU cost
    /// (interception, PBS command processing); keyed by timer tag.
    deferred: BTreeMap<u64, Payload>,
    /// Witness obituaries: re-broadcast after a grace period unless the
    /// job completed in the meantime.
    witness: BTreeMap<u64, Payload>,
    next_tag: u64,
    stats: JoshuaStats,
}

impl JoshuaServer {
    /// Create a daemon. `initial_heads` is the static bootstrap member
    /// list (all initial heads configured identically); a process not in
    /// the list joins through them instead.
    pub fn new(me: ProcId, config: JoshuaConfig, initial_heads: Vec<ProcId>) -> Self {
        let group = GroupMember::new(me, config.group.clone(), initial_heads.clone());
        let pbs = Self::fresh_pbs(&config, me);
        let awaiting = if initial_heads.contains(&me) { None } else { Some(Vec::new()) };
        JoshuaServer {
            config,
            group,
            pbs,
            jmutex: JMutexState::new(),
            applied: BTreeMap::new(),
            needs_snapshot: BTreeSet::new(),
            joined_current: BTreeSet::new(),
            awaiting,
            last_applied_seq: 0,
            deferred: BTreeMap::new(),
            witness: BTreeMap::new(),
            next_tag: 1,
            stats: JoshuaStats::default(),
        }
    }

    fn fresh_pbs(config: &JoshuaConfig, me: ProcId) -> PbsServerCore {
        let mut pbs = PbsServerCore::new(
            format!("joshua-{me}"),
            config.nodes.iter().map(|(n, _)| n.clone()),
            config.policy.make(),
        );
        for (node, mom) in &config.nodes {
            pbs.register_mom(node, *mom);
        }
        pbs
    }

    // ------------------------------------------------------------------
    // Introspection (tests, experiments)
    // ------------------------------------------------------------------

    /// The embedded PBS server.
    pub fn pbs(&self) -> &PbsServerCore {
        &self.pbs
    }

    /// The group membership view.
    pub fn view(&self) -> &View {
        self.group.view()
    }

    /// Counters.
    pub fn stats(&self) -> JoshuaStats {
        self.stats
    }

    /// Group-layer counters.
    pub fn group_stats(&self) -> jrs_gcs::GroupStats {
        self.group.stats()
    }

    /// Is this head fully established (installed and state-transferred)?
    pub fn is_established(&self) -> bool {
        self.group.is_installed() && self.awaiting.is_none()
    }

    /// The jmutex table (tests).
    pub fn jmutex(&self) -> &JMutexState {
        &self.jmutex
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// The member responsible for client-visible output: the lowest-ranked
    /// member of the current view that did not just join (so it certainly
    /// holds full state). Deterministic at every replica by virtue of
    /// virtual synchrony.
    fn responder(&self) -> Option<ProcId> {
        self.group
            .view()
            .members
            .iter()
            .copied()
            .find(|m| !self.joined_current.contains(m))
            .or_else(|| self.group.view().leader())
    }

    fn is_responder(&self) -> bool {
        self.responder() == Some(self.group.me())
    }

    /// Transmit group frames, modelling serial CPU cost per frame. The
    /// cost depends on the frame class: protocol frames pay the full
    /// daemon processing cost, stability acknowledgements pay the (slower,
    /// timer-batched) ack-path cost, and background datagrams / bare link
    /// acks are nearly free. Calibration table in EXPERIMENTS.md.
    fn flush_gcs(&mut self, ctx: &mut Ctx<'_>, out: GcsOutput<Payload>) {
        use jrs_gcs::{EngineMsg, GcsMsg};
        let mut busy = SimDuration::ZERO;
        let cost = &self.config.cost;
        for (to, frame, bytes) in out.wire {
            busy += match &frame {
                Wire::Ack { .. } => cost.gcs_background_delay,
                Wire::Raw(GcsMsg::Heartbeat { .. }) | Wire::Raw(GcsMsg::JoinReq { .. }) => {
                    cost.gcs_background_delay
                }
                Wire::Data {
                    msg: GcsMsg::Engine { msg: EngineMsg::Ack { .. }, .. },
                    ..
                } => cost.gcs_ack_delay,
                _ => cost.gcs_frame_delay,
            };
            ctx.send_sized_after(to, frame, bytes, busy);
        }
        for ev in out.events {
            self.on_gcs_event(ctx, ev);
        }
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let out = self.group.broadcast(ctx.now(), payload);
        self.flush_gcs(ctx, out);
    }

    /// Broadcast `payload` after a modelled CPU delay (the work that
    /// produces it). Keeps cost serialization correct even for the
    /// single-head case where self-delivery is synchronous.
    fn defer_broadcast(&mut self, ctx: &mut Ctx<'_>, payload: Payload, delay: SimDuration) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.deferred.insert(tag, payload);
        ctx.set_timer(delay, tag);
    }

    /// Witness duty for an obituary: re-broadcast after a grace period
    /// unless the completion became visible in the replicated state.
    fn defer_witness(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.witness.insert(tag, payload);
        ctx.set_timer(SimDuration::from_secs(2), tag);
    }

    fn on_gcs_event(&mut self, ctx: &mut Ctx<'_>, ev: GcsEvent<Payload>) {
        match ev {
            GcsEvent::Deliver { seq, payload, .. } => {
                if let Some(buf) = &mut self.awaiting {
                    // Awaiting our snapshot: buffer everything except the
                    // snapshot addressed to us.
                    let is_my_snapshot = matches!(
                        &payload,
                        Payload::Snapshot { targets, .. } if targets.contains(&ctx.me())
                    );
                    if !is_my_snapshot {
                        buf.push((seq, payload));
                        return;
                    }
                }
                self.apply(ctx, seq, payload);
            }
            GcsEvent::ViewChange { view, joined, left } => {
                self.on_view_change(ctx, view, joined, left);
            }
            GcsEvent::Ejected => self.on_ejected(ctx),
        }
    }

    // ------------------------------------------------------------------
    // Ordered payload application
    // ------------------------------------------------------------------

    fn apply(&mut self, ctx: &mut Ctx<'_>, seq: u64, payload: Payload) {
        self.stats.payloads_applied += 1;
        self.last_applied_seq = seq;
        match payload {
            Payload::Client { client, req_id, cmd } => {
                self.apply_client(ctx, client, req_id, cmd);
            }
            Payload::Output { client, req_id } => {
                if self.is_responder() {
                    if let Some((applied_id, reply)) = self.applied.get(&client) {
                        if *applied_id == req_id {
                            let reply = reply.clone();
                            self.stats.replies_sent += 1;
                            ctx.send_after(
                                client,
                                ClientReply { req_id, reply },
                                self.config.cost.intercept_overhead,
                            );
                        }
                    }
                }
            }
            Payload::MomFinished { job, exit, .. } => {
                let actions = self.pbs.on_report(ctx.now(), &MomReport::Finished { job, exit });
                self.dispatch(ctx, actions, SimDuration::ZERO);
            }
            Payload::JMutexAcquire { job, mom, session, granter } => {
                let outcome = self.jmutex.acquire(job, mom, session, granter);
                // The forwarding head sends the verdict; if it died while
                // the acquire was in flight, the responder covers for it
                // (deterministic: every replica sees the same view).
                let sender = if self.view().contains(granter) {
                    granter
                } else {
                    self.responder().unwrap_or(granter)
                };
                if sender == ctx.me() {
                    let granted = outcome == JMutexOutcome::Granted;
                    if granted {
                        self.stats.jmutex_granted += 1;
                    } else {
                        self.stats.jmutex_denied += 1;
                    }
                    ctx.send(mom, MomInbound::Verdict { job, session, granted });
                }
            }
            Payload::JMutexRelease { job } => {
                self.jmutex.release(job);
            }
            Payload::Snapshot { targets, as_of_seq, state } => {
                for t in &targets {
                    self.needs_snapshot.remove(t);
                    self.joined_current.remove(t);
                }
                if targets.contains(&ctx.me()) {
                    self.install_snapshot(ctx, as_of_seq, *state);
                }
            }
        }
    }

    fn apply_client(&mut self, ctx: &mut Ctx<'_>, client: ProcId, req_id: u64, cmd: ServerCmd) {
        let floor = self.applied.get(&client).map(|(id, _)| *id).unwrap_or(0);
        if req_id <= floor {
            // Duplicate (client retried through another head). Re-release
            // the cached output if it is the same request.
            if req_id == floor && self.is_responder() {
                let delay = self.config.cost.intercept_overhead;
                self.defer_broadcast(ctx, Payload::Output { client, req_id }, delay);
            }
            return;
        }
        let cost = self.config.cost.pbs.cost_of(&cmd);
        let (reply, actions) = self.pbs.apply(ctx.now(), &cmd);
        self.applied.insert(client, (req_id, reply));
        self.dispatch(ctx, actions, cost);
        if self.is_responder() {
            // Second ordering round, once the PBS server has produced the
            // output: agree on its release.
            self.defer_broadcast(ctx, Payload::Output { client, req_id }, cost);
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, actions: Vec<ServerAction>, delay: SimDuration) {
        let me = ctx.me();
        for a in actions {
            match a {
                ServerAction::Start { mom, job, spec, nodes } => {
                    if let Some(mom) = mom {
                        let msg = MomInbound::Start {
                            job,
                            spec,
                            nodes,
                            server: me,
                            arbiter: Some(me),
                        };
                        ctx.send_after(mom, msg, delay + self.config.cost.pbs.dispatch_processing);
                    }
                }
                ServerAction::Cancel { mom, job } => {
                    if let Some(mom) = mom {
                        ctx.send_after(
                            mom,
                            MomInbound::Cancel { job, server: me },
                            delay + self.config.cost.pbs.dispatch_processing,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn on_view_change(
        &mut self,
        ctx: &mut Ctx<'_>,
        view: View,
        joined: Vec<ProcId>,
        _left: Vec<ProcId>,
    ) {
        self.joined_current = joined.iter().copied().collect();
        for j in &joined {
            if *j != ctx.me() {
                self.needs_snapshot.insert(*j);
            }
        }
        if joined.contains(&ctx.me()) {
            // We are the (re)joiner: await state.
            if self.awaiting.is_none() {
                self.awaiting = Some(Vec::new());
            }
            // Register with the moms for future obituaries.
            for (_, mom) in self.config.nodes.clone() {
                ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
            }
            return;
        }
        // Verdict redelivery: outstanding launch grants whose granter
        // left can never reach their mom — the responder re-sends them.
        // Idempotent at the mom (a running/done job ignores late grants).
        if self.is_responder() && self.awaiting.is_none() {
            let lost: Vec<(jrs_pbs::JobId, crate::payload::Grant)> = self
                .jmutex
                .grants()
                .filter(|(_, g)| !view.contains(g.granter))
                .collect();
            for (job, g) in lost {
                ctx.send(
                    g.mom,
                    MomInbound::Verdict { job, session: g.session, granted: true },
                );
            }
        }
        // Donor duty: the responder ships state to whoever needs it.
        if self.is_responder() && !self.needs_snapshot.is_empty() && self.awaiting.is_none() {
            let state = ReplicaState {
                pbs: self.pbs.snapshot(),
                jmutex: self.jmutex.clone(),
                applied: self
                    .applied
                    .iter()
                    .map(|(c, (id, r))| (*c, *id, r.clone()))
                    .collect(),
                needs_snapshot: self.needs_snapshot.iter().copied().collect(),
            };
            let targets: Vec<ProcId> = self.needs_snapshot.iter().copied().collect();
            self.stats.snapshots_sent += 1;
            let as_of_seq = self.last_applied_seq;
            self.broadcast(
                ctx,
                Payload::Snapshot { targets, as_of_seq, state: Box::new(state) },
            );
        }
        let _ = view;
    }

    fn install_snapshot(&mut self, ctx: &mut Ctx<'_>, as_of_seq: u64, state: ReplicaState) {
        self.stats.snapshots_installed += 1;
        self.pbs.restore(&state.pbs);
        self.jmutex = state.jmutex;
        self.applied = state
            .applied
            .into_iter()
            .map(|(c, id, r)| (c, (id, r)))
            .collect();
        self.needs_snapshot = state.needs_snapshot.into_iter().collect();
        self.needs_snapshot.remove(&ctx.me());
        // Replay everything ordered after the snapshot's creation point.
        let buffered = self.awaiting.take().unwrap_or_default();
        for (seq, payload) in buffered {
            if seq > as_of_seq {
                self.apply(ctx, seq, payload);
            }
        }
    }

    fn on_ejected(&mut self, ctx: &mut Ctx<'_>) {
        // Total state reset; the group layer rejoins automatically and a
        // snapshot will arrive after the next view change.
        self.pbs = Self::fresh_pbs(&self.config, ctx.me());
        self.jmutex = JMutexState::new();
        self.applied.clear();
        self.needs_snapshot.clear();
        self.joined_current.clear();
        self.awaiting = Some(Vec::new());
        self.last_applied_seq = 0;
    }
}

impl Process for JoshuaServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let out = self.group.start(ctx.now());
        self.flush_gcs(ctx, out);
        let tick = self.config.group.tick_every;
        ctx.set_timer(tick, 0);
        // Initial members register with the moms right away.
        if self.group.is_installed() {
            for (_, mom) in self.config.nodes.clone() {
                ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
        // Group traffic from peer daemons.
        if msg.downcast_ref::<Wire<Payload>>().is_some() {
            let frame = *msg.downcast::<Wire<Payload>>().expect("checked");
            let now = ctx.now();
            let out = self.group.on_wire(now, from, frame);
            self.flush_gcs(ctx, out);
            return;
        }
        // Intercepted PBS user command.
        if let Some(req) = msg.downcast_ref::<ClientRequest>() {
            self.stats.commands_forwarded += 1;
            let payload = Payload::Client {
                client: req.client,
                req_id: req.req_id,
                cmd: req.cmd.clone(),
            };
            // Interception cost (jsub → joshua local round), then order.
            let delay = self.config.cost.intercept_overhead;
            self.defer_broadcast(ctx, payload, delay);
            return;
        }
        // Obituaries and other mom reports.
        if let Some(report) = msg.downcast_ref::<MomReport>() {
            if let MomReport::Finished { job, exit } = report {
                // Lift into the total order. Only the responder broadcasts
                // immediately (every head receives the same report from
                // the mom); the others act as witnesses, re-broadcasting
                // after a grace period if the completion never appears —
                // covering a responder that died holding the report.
                let p = Payload::MomFinished { job: *job, exit: *exit, mom: from };
                if self.is_responder() {
                    self.broadcast(ctx, p);
                } else {
                    self.defer_witness(ctx, p);
                }
            }
            return;
        }
        // jmutex protocol from mom launch prologues.
        if let Some(req) = msg.downcast_ref::<ArbiterRequest>() {
            let p = Payload::JMutexAcquire {
                job: req.job,
                mom: req.mom,
                session: req.session,
                granter: ctx.me(),
            };
            self.broadcast(ctx, p);
            return;
        }
        if let Some(rel) = msg.downcast_ref::<ArbiterRelease>() {
            let p = Payload::JMutexRelease { job: rel.job };
            self.broadcast(ctx, p);
            return;
        }
        // Administrative shutdown (voluntary leave).
        if msg.downcast_ref::<LeaveCmd>().is_some() {
            let out = self.group.leave(ctx.now());
            self.flush_gcs(ctx, out);
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        if tag == 0 {
            let out = self.group.tick(ctx.now());
            self.flush_gcs(ctx, out);
            let tick = self.config.group.tick_every;
            ctx.set_timer(tick, 0);
            return;
        }
        if let Some(payload) = self.deferred.remove(&tag) {
            self.broadcast(ctx, payload);
            return;
        }
        if let Some(payload) = self.witness.remove(&tag) {
            let still_needed = match &payload {
                Payload::MomFinished { job, .. } => self
                    .pbs
                    .job(*job)
                    .map(|j| j.state != jrs_pbs::JobState::Complete)
                    .unwrap_or(false),
                _ => false,
            };
            if still_needed {
                self.broadcast(ctx, payload);
            }
        }
    }
}
