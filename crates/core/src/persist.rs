//! Durable head-node storage: the glue between a [`JoshuaServer`] and the
//! `jrs-store` WAL/snapshot machinery on the head's local simulated disk.
//!
//! Three files per head:
//!
//! * `joshua.wal` — checksummed record-framed log of every applied
//!   command, keyed by the monotonic applied-command index (full history;
//!   compaction is a ROADMAP item).
//! * `joshua.snap` — periodic full [`ReplicaState`] snapshot with the
//!   index it covers; bounds WAL replay time and rescues recovery when
//!   the log is damaged beyond the snapshot point.
//! * `joshua.inc` — the group-membership incarnation last announced, so a
//!   restarted process rejoins with a strictly greater one (peers ignore
//!   stale join requests).
//!
//! Recovery tolerates exactly the damage the fault layer injects: a torn
//! tail (crash mid-write, or an armed [`jrs_sim::SimDisk`] torn-write
//! fault) is truncated to the last valid record; a CRC failure *before*
//! the tail is mid-log corruption — the log is quarantined with the
//! failing record's byte offset reported, and recovery falls back to the
//! snapshot alone, leaving the head to fetch the rest from its peers.
//!
//! [`JoshuaServer`]: crate::server::JoshuaServer

use crate::payload::{Payload, ReplicaState};
use jrs_sim::{SimDisk, SimTime};
use jrs_store::{Codec, SnapshotStore, Wal, WalError};

/// What recovery found on the local disk.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Snapshot state, if a valid snapshot file existed.
    pub state: Option<ReplicaState>,
    /// All decodable WAL entries `(applied_index, payload)` in log order —
    /// including those at or below the snapshot index (the caller uses the
    /// tail to rebuild its donation ring).
    pub entries: Vec<(u64, Payload)>,
    /// A torn tail was detected and truncated to the last valid record.
    pub torn_tail_truncated: bool,
    /// Mid-log corruption: the byte offset of the first bad record. The
    /// log was quarantined and only the snapshot (if any) was used.
    pub corruption_offset: Option<u64>,
    /// Persisted group incarnation (0 when never persisted).
    pub incarnation: u64,
}

/// Durable storage handle for one head. Stateless besides the file names;
/// all data lives on the per-node [`SimDisk`].
pub struct HeadStore {
    wal: Wal,
    snap: SnapshotStore,
    inc_path: String,
}

impl HeadStore {
    /// Store rooted at the conventional per-head file names.
    pub fn new() -> Self {
        HeadStore {
            wal: Wal::new("joshua.wal"),
            snap: SnapshotStore::new("joshua.snap"),
            inc_path: "joshua.inc".to_string(),
        }
    }

    /// Append one applied command to the WAL and fsync it durable.
    /// Returns false if the fsync did not land (disk stall fault): the
    /// record survives only until the next crash.
    pub fn log_command(
        &self,
        disk: &mut SimDisk,
        now: SimTime,
        applied_index: u64,
        payload: &Payload,
    ) -> bool {
        self.wal.append(disk, applied_index, &payload.to_bytes());
        disk.fsync(self.wal.path(), now)
    }

    /// Write a full-state snapshot covering `applied_index`. Publication
    /// is atomic (tmp + fsync + rename); on a stalled fsync the previous
    /// snapshot stays intact and this returns false.
    pub fn save_snapshot(
        &self,
        disk: &mut SimDisk,
        now: SimTime,
        applied_index: u64,
        state: &ReplicaState,
    ) -> bool {
        self.snap.save(disk, now, applied_index, &state.to_bytes())
    }

    /// Persist the group incarnation (overwrites; fsyncs).
    pub fn save_incarnation(&self, disk: &mut SimDisk, now: SimTime, incarnation: u64) {
        disk.truncate(&self.inc_path, 0);
        disk.append(&self.inc_path, &incarnation.to_bytes());
        disk.fsync(&self.inc_path, now);
    }

    /// Recover everything the disk still vouches for. Never fails: any
    /// damage degrades to less recovered state, with the damage reported
    /// in the returned [`Recovered`].
    pub fn recover(&self, disk: &mut SimDisk) -> Recovered {
        let mut rec = Recovered::default();

        if let Some(bytes) = disk.read(&self.inc_path) {
            if let Ok(inc) = u64::from_bytes(&bytes) {
                rec.incarnation = inc;
            }
        }

        let mut snap_index = 0;
        if let Some((index, state_bytes)) = self.snap.load(disk) {
            if let Ok(state) = ReplicaState::from_bytes(&state_bytes) {
                snap_index = index;
                rec.state = Some(state);
            }
        }

        match self.wal.replay(disk) {
            Ok(replay) => {
                if replay.torn {
                    self.wal.truncate_to(disk, replay.valid_len);
                    rec.torn_tail_truncated = true;
                }
                for (index, blob) in replay.entries {
                    match Payload::from_bytes(&blob) {
                        Ok(p) => rec.entries.push((index, p)),
                        // CRC-valid but undecodable can only be a code
                        // bug; treat like corruption at an unknown spot
                        // rather than silently skipping a command.
                        Err(_) => {
                            rec.corruption_offset = Some(u64::MAX);
                            rec.entries.retain(|(i, _)| *i <= snap_index);
                            self.wal.quarantine(disk);
                            break;
                        }
                    }
                }
            }
            Err(WalError::Corruption { offset }) => {
                // Mid-log damage: hard error with the record offset. The
                // snapshot (if any) is the only trustworthy local state.
                rec.corruption_offset = Some(offset);
                self.wal.quarantine(disk);
            }
        }
        rec
    }
}

impl Default for HeadStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrs_pbs::server::ServerSnapshot;
    use jrs_sim::ProcId;

    fn state(applied_index: u64) -> ReplicaState {
        ReplicaState {
            pbs: ServerSnapshot {
                jobs: vec![],
                next_id: 1,
                pool: Default::default(),
                running_since: vec![],
            },
            jmutex: crate::payload::JMutexState::new(),
            applied: vec![],
            needs_snapshot: vec![],
            applied_index,
            hellos: vec![],
        }
    }

    fn cmd(i: u64) -> Payload {
        Payload::JMutexRelease { job: jrs_pbs::JobId(i) }
    }

    #[test]
    fn snapshot_plus_wal_round_trip() {
        let mut disk = SimDisk::new();
        let store = HeadStore::new();
        let now = SimTime::ZERO;
        assert!(store.save_snapshot(&mut disk, now, 2, &state(2)));
        for i in 1..=5 {
            assert!(store.log_command(&mut disk, now, i, &cmd(i)));
        }
        store.save_incarnation(&mut disk, now, 3);
        disk.on_crash();

        let rec = store.recover(&mut disk);
        assert_eq!(rec.incarnation, 3);
        assert_eq!(rec.state.as_ref().unwrap().applied_index, 2);
        assert_eq!(rec.entries.len(), 5, "full history kept");
        assert!(!rec.torn_tail_truncated);
        assert_eq!(rec.corruption_offset, None);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let mut disk = SimDisk::new();
        let store = HeadStore::new();
        let now = SimTime::ZERO;
        for i in 1..=3 {
            assert!(store.log_command(&mut disk, now, i, &cmd(i)));
        }
        disk.arm_torn_write(4);
        assert!(store.log_command(&mut disk, now, 4, &cmd(4)));
        disk.on_crash(); // tears record 4 down to 4 bytes

        let rec = store.recover(&mut disk);
        assert!(rec.torn_tail_truncated);
        assert_eq!(rec.corruption_offset, None);
        let ids: Vec<u64> = rec.entries.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // The truncation is durable: a second recovery sees a clean log.
        let rec2 = store.recover(&mut disk);
        assert!(!rec2.torn_tail_truncated);
        assert_eq!(rec2.entries.len(), 3);
    }

    #[test]
    fn midlog_corruption_quarantines_with_offset() {
        let mut disk = SimDisk::new();
        let store = HeadStore::new();
        let now = SimTime::ZERO;
        assert!(store.save_snapshot(&mut disk, now, 1, &state(1)));
        let mut first_len = 0;
        for i in 1..=3 {
            assert!(store.log_command(&mut disk, now, i, &cmd(i)));
            if i == 1 {
                first_len = u64::try_from(disk.durable_len("joshua.wal")).expect("fits");
            }
        }
        // Flip a byte inside record 2 (mid-log, not the tail).
        assert!(disk.corrupt_byte("joshua.wal", first_len + 9));
        let rec = store.recover(&mut disk);
        assert_eq!(rec.corruption_offset, Some(first_len), "offset of the bad record");
        assert!(rec.entries.is_empty(), "snapshot-only recovery");
        assert_eq!(rec.state.as_ref().unwrap().applied_index, 1);
        assert!(disk.read("joshua.wal").is_none(), "log quarantined");
        assert!(disk.read("joshua.wal.corrupt").is_some());
        let _ = ProcId(0);
    }

    #[test]
    fn empty_disk_recovers_to_nothing() {
        let mut disk = SimDisk::new();
        let rec = HeadStore::new().recover(&mut disk);
        assert!(rec.state.is_none());
        assert!(rec.entries.is_empty());
        assert_eq!(rec.incarnation, 0);
    }
}
