//! # jrs-bench — experiment harness for the JOSHUA reproduction
//!
//! One runner per paper artifact (tables/figures) plus ablations; the
//! binaries in `src/bin/` print paper-style tables and the Criterion
//! benches in `benches/` measure the real implementation.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{latency_experiment, throughput_experiment, LatencyRow, ThroughputRow};
