//! Committed perf-trajectory baseline: ordering and persistence
//! microbenches plus the Figure-10 submission-latency reproduction,
//! emitted as machine-readable JSON.
//!
//! Two modes:
//!
//! * `bench_baseline` — full run; redirect stdout to `BENCH_<n>.json`
//!   and commit it so every later PR's numbers have something to
//!   regress against.
//! * `bench_baseline --check` — CI smoke: tiny sizes, asserts the
//!   harness still produces sane, internally consistent numbers
//!   (positive latencies, deliveries actually happening, WAL replay
//!   inverting append) without caring about absolute speed, which is
//!   machine-dependent.
//!
//! Wall-clock numbers measure the Rust implementation on the build
//! machine, not the simulated testbed; the Fig-10 rows carry the
//! sim-time latencies, which are deterministic per seed.

use joshua_core::cluster::HaMode;
use joshua_core::payload::Payload;
use jrs_bench::latency_experiment;
use jrs_gcs::config::{EngineKind, GroupConfig};
use jrs_gcs::testkit::Pump;
use jrs_pbs::job::JobSpec;
use jrs_pbs::server::ServerCmd;
use jrs_sim::{ProcId, SimDisk, SimTime};
use jrs_store::codec::Codec;
use jrs_store::wal::Wal;
use std::hint::black_box;
use std::time::Instant;

struct OrderingRow {
    engine: &'static str,
    members: u32,
    msgs: usize,
    ns_per_msg: f64,
}

/// In-memory pump: order `msgs` broadcasts through an n-member group.
fn bench_ordering(members: u32, engine: EngineKind, msgs: usize) -> OrderingRow {
    // Warm-up pass keeps one-time setup out of the measured loop.
    for _ in 0..2 {
        let mut pump = Pump::<u32>::group(members, GroupConfig::with_engine(engine));
        for i in 0..msgs as u32 {
            pump.broadcast(ProcId(i % members), i);
        }
        assert!(!pump.delivered.is_empty(), "ordering pump delivered nothing");
    }
    let start = Instant::now();
    let mut pump = Pump::<u32>::group(members, GroupConfig::with_engine(engine));
    for i in 0..msgs as u32 {
        pump.broadcast(ProcId(i % members), i);
    }
    let elapsed = start.elapsed();
    black_box(pump.delivered.len());
    OrderingRow {
        engine: match engine {
            EngineKind::Sequencer => "Sequencer",
            EngineKind::Token => "Token",
        },
        members,
        msgs,
        ns_per_msg: elapsed.as_nanos() as f64 / msgs as f64,
    }
}

struct PersistRows {
    record_bytes: usize,
    payload_encode_ns: f64,
    payload_decode_ns: f64,
    wal_append_ns: f64,
    wal_replay_ns: f64,
    records: usize,
}

/// Representative replicated command: a qsub riding in a Client payload.
fn sample_payload(i: u64) -> Payload {
    Payload::Client {
        client: ProcId((i % 7) as u32),
        req_id: i,
        cmd: ServerCmd::Qsub(JobSpec::trivial(format!("job-{i}"))),
    }
}

fn bench_persist(records: usize) -> PersistRows {
    let blobs: Vec<Vec<u8>> = (0..records as u64).map(|i| sample_payload(i).to_bytes()).collect();
    let record_bytes = blobs[0].len();

    let start = Instant::now();
    for i in 0..records as u64 {
        black_box(sample_payload(i).to_bytes());
    }
    let payload_encode_ns = start.elapsed().as_nanos() as f64 / records as f64;

    let start = Instant::now();
    for b in &blobs {
        black_box(Payload::from_bytes(b).expect("encoded payload decodes"));
    }
    let payload_decode_ns = start.elapsed().as_nanos() as f64 / records as f64;

    let wal = Wal::new("bench.wal");
    let mut disk = SimDisk::new();
    let start = Instant::now();
    for (i, b) in blobs.iter().enumerate() {
        wal.append(&mut disk, i as u64, b);
    }
    let wal_append_ns = start.elapsed().as_nanos() as f64 / records as f64;
    disk.fsync("bench.wal", SimTime::ZERO);

    let start = Instant::now();
    let replay = wal.replay(&disk).expect("clean WAL replays");
    let wal_replay_ns = start.elapsed().as_nanos() as f64 / records as f64;
    assert_eq!(replay.entries.len(), records, "replay must invert append");
    assert!(!replay.torn, "clean WAL must not report a torn tail");

    PersistRows {
        record_bytes,
        payload_encode_ns,
        payload_decode_ns,
        wal_append_ns,
        wal_replay_ns,
        records,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (msgs, records, jobs) = if check { (200, 500, 10) } else { (5_000, 20_000, 100) };
    let seed = 2006u64;

    let mut ordering = Vec::new();
    for members in [1u32, 2, 4] {
        for engine in [EngineKind::Sequencer, EngineKind::Token] {
            ordering.push(bench_ordering(members, engine, msgs));
        }
    }

    let persist = bench_persist(records);

    let modes = [
        ("TORQUE", HaMode::SingleHead),
        ("JOSHUA/TORQUE", HaMode::Joshua { heads: 1 }),
        ("JOSHUA/TORQUE", HaMode::Joshua { heads: 2 }),
        ("JOSHUA/TORQUE", HaMode::Joshua { heads: 3 }),
        ("JOSHUA/TORQUE", HaMode::Joshua { heads: 4 }),
    ];
    let fig10: Vec<_> = modes.iter().map(|(_, mode)| latency_experiment(*mode, jobs, seed)).collect();

    if check {
        for r in &ordering {
            assert!(r.ns_per_msg > 0.0, "{}x{}: non-positive timing", r.engine, r.members);
        }
        assert!(persist.payload_encode_ns > 0.0 && persist.wal_append_ns > 0.0);
        for row in &fig10 {
            assert!(
                row.mean_ms > 0.0 && row.p99_ms >= row.p50_ms && row.count > 0,
                "implausible latency row for {} heads: mean {}ms p50 {}ms p99 {}ms",
                row.heads,
                row.mean_ms,
                row.p50_ms,
                row.p99_ms
            );
        }
        // Replication must cost something: the 4-head mean cannot be
        // below the single-head mean (that would mean the harness is
        // no longer measuring the ordering round).
        assert!(
            fig10[4].mean_ms >= fig10[0].mean_ms,
            "4-head latency ({:.1}ms) below single-head ({:.1}ms) — harness broken?",
            fig10[4].mean_ms,
            fig10[0].mean_ms
        );
        eprintln!("bench baseline smoke OK ({msgs} msgs, {records} records, {jobs} jobs)");
        return;
    }

    // Hand-rolled JSON, like the analysis tools: zero dependencies.
    let mut out = String::from("{\n  \"schema\": \"bench-baseline-v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"msgs\": {msgs}, \"records\": {records}, \"jobs\": {jobs}, \"seed\": {seed} }},\n"
    ));
    out.push_str("  \"ordering\": [\n");
    for (i, r) in ordering.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"members\": {}, \"msgs\": {}, \"ns_per_msg\": {:.0} }}{}\n",
            r.engine,
            r.members,
            r.msgs,
            r.ns_per_msg,
            if i + 1 < ordering.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"persist\": {{ \"records\": {}, \"record_bytes\": {}, \"payload_encode_ns\": {:.0}, \
         \"payload_decode_ns\": {:.0}, \"wal_append_ns\": {:.0}, \"wal_replay_ns\": {:.0} }},\n",
        persist.records,
        persist.record_bytes,
        persist.payload_encode_ns,
        persist.payload_decode_ns,
        persist.wal_append_ns,
        persist.wal_replay_ns
    ));
    out.push_str("  \"fig10\": [\n");
    for (i, (row, (label, _))) in fig10.iter().zip(modes.iter()).enumerate() {
        out.push_str(&format!(
            "    {{ \"system\": \"{}\", \"heads\": {}, \"mean_ms\": {:.2}, \"p50_ms\": {:.2}, \
             \"p99_ms\": {:.2}, \"count\": {} }}{}\n",
            label,
            row.heads,
            row.mean_ms,
            row.p50_ms,
            row.p99_ms,
            row.count,
            if i + 1 < fig10.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
