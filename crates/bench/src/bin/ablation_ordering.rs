//! E5 — ordering-engine ablation: submission latency under the fixed
//! sequencer (ISIS-style, JOSHUA default) vs. the rotating token
//! (Totem-style, closer to what Totem/Spread-era systems did), across
//! head-node counts.
//!
//! The paper names Spread and Ensemble as candidate Transis replacements;
//! this ablation quantifies what the ordering mechanism costs.

use joshua_core::cluster::HaMode;
use jrs_bench::experiments::latency_experiment_with_engine;
use jrs_bench::report;
use jrs_gcs::EngineKind;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let seed = 2006u64;

    println!("E5 — ordering engine ablation ({jobs} submissions, seed {seed})");
    println!();

    let mut rows = Vec::new();
    for heads in 1..=4usize {
        let seq = latency_experiment_with_engine(
            HaMode::Joshua { heads },
            jobs,
            seed,
            EngineKind::Sequencer,
        );
        let tok = latency_experiment_with_engine(
            HaMode::Joshua { heads },
            jobs,
            seed,
            EngineKind::Token,
        );
        rows.push(vec![
            heads.to_string(),
            format!("{:.0}ms", seq.mean_ms),
            format!("{:.0}ms", seq.p99_ms),
            format!("{:.0}ms", tok.mean_ms),
            format!("{:.0}ms", tok.p99_ms),
            format!("{:+.0}%", (tok.mean_ms / seq.mean_ms - 1.0) * 100.0),
        ]);
    }
    report::table(
        &["Heads", "Sequencer", "seq p99", "Token", "tok p99", "Token vs Seq"],
        &rows,
    );
}
