//! E1 — Figure 10: job submission latency, single vs. multiple head
//! nodes. Reproduces the paper's table:
//!
//! ```text
//! System          #   Latency   Overhead
//! TORQUE          1   98ms
//! JOSHUA/TORQUE   1   134ms     36ms / 37%
//! JOSHUA/TORQUE   2   265ms     158ms / 161%
//! JOSHUA/TORQUE   3   304ms     206ms / 210%
//! JOSHUA/TORQUE   4   349ms     251ms / 256%
//! ```

use joshua_core::cluster::HaMode;
use jrs_bench::{latency_experiment, report};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2006);

    println!("E1 / Figure 10 — job submission latency ({jobs} submissions, seed {seed})");
    println!();

    let paper_ms = [98.0, 134.0, 265.0, 304.0, 349.0];
    let modes = [
        HaMode::SingleHead,
        HaMode::Joshua { heads: 1 },
        HaMode::Joshua { heads: 2 },
        HaMode::Joshua { heads: 3 },
        HaMode::Joshua { heads: 4 },
    ];

    let mut rows = Vec::new();
    let mut base_ms = None;
    for (mode, paper) in modes.iter().zip(paper_ms) {
        let r = latency_experiment(*mode, jobs, seed);
        let base = *base_ms.get_or_insert(r.mean_ms);
        let overhead = if r.heads > 0 && r.label != "TORQUE" {
            report::overhead(base, r.mean_ms)
        } else {
            String::new()
        };
        rows.push(vec![
            r.label.clone(),
            r.heads.to_string(),
            format!("{:.0}ms", r.mean_ms),
            overhead,
            format!("{paper:.0}ms"),
            format!("{:.0}ms", r.p99_ms),
        ]);
    }
    report::table(
        &["System", "#", "Latency", "Overhead", "Paper", "p99"],
        &rows,
    );
}
