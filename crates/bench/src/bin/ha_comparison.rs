//! E6 — HA-model comparison under the same fault: the four architectures
//! of the paper's Figures 1–4 run the same job burst and suffer the same
//! head crash at t = 3 s. Measured: commands answered, worst client-
//! visible service gap, jobs restarted (active/standby failover cost),
//! and jobs whose execution was lost entirely.
//!
//! This quantifies the paper's qualitative Section 2 comparison:
//! single-head loses the service, active/standby interrupts it and
//! restarts applications, asymmetric active/active loses the failed
//! head's queue, and JOSHUA continues without interruption.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::ha::ActiveStandbyHead;
use joshua_core::workload;
use jrs_bench::report;
use jrs_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

struct Outcome {
    label: String,
    answered: usize,
    max_gap_ms: f64,
    restarted: u64,
    completed_jobs: u64,
}

fn run(mode: HaMode, jobs: usize) -> Outcome {
    let mut cfg = ClusterConfig::new(mode);
    cfg.seed = 2006;
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst_with_runtime(jobs, SimDuration::from_secs(2)));
    let n0 = c.head_nodes[0];
    c.world.schedule_at(secs(1), move |w| w.crash_node(n0));
    c.run_until(secs((jobs as u64 + 60) * 6));
    let raw = c.world.take_emitted::<jrs_pbs::SubmitRecord>();
    let times: Vec<SimTime> = raw.iter().map(|(t, _, _)| *t).collect();
    let max_gap_ms = times
        .windows(2)
        .map(|w| w[1].since(w[0]).as_millis_f64())
        .fold(0.0, f64::max);
    let restarted = match mode {
        HaMode::ActiveStandby => c
            .heads
            .iter()
            .filter_map(|p| c.world.proc_ref::<ActiveStandbyHead>(*p))
            .map(|h| h.restarted_jobs)
            .sum(),
        _ => 0,
    };
    Outcome {
        label: mode.label(),
        answered: raw.len(),
        max_gap_ms,
        restarted,
        completed_jobs: c.total_real_runs(),
    }
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    println!("E6 — HA model comparison ({jobs}-job burst, head-0 crash at t=1s)");
    println!();

    let modes = [
        HaMode::SingleHead,
        HaMode::ActiveStandby,
        HaMode::Asymmetric { heads: 2 },
        HaMode::Joshua { heads: 2 },
    ];
    let mut rows = Vec::new();
    for mode in modes {
        let o = run(mode, jobs);
        let verdict = if o.answered < jobs {
            "SERVICE LOST"
        } else if o.restarted > 0 {
            "INTERRUPTED, JOBS RESTARTED"
        } else if (o.completed_jobs as usize) < jobs {
            "ACCEPTED JOBS LOST"
        } else if o.max_gap_ms > 5_000.0 {
            "INTERRUPTED"
        } else {
            "CONTINUOUS"
        };
        rows.push(vec![
            o.label,
            format!("{}/{}", o.answered, jobs),
            format!("{:.1}s", o.max_gap_ms / 1000.0),
            o.restarted.to_string(),
            o.completed_jobs.to_string(),
            verdict.into(),
        ]);
    }
    report::table(
        &["System", "Answered", "MaxGap", "Restarted", "RealRuns", "Verdict"],
        &rows,
    );
}
