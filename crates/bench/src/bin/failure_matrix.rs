//! E4 — the paper's Section 5 functional testing, as a measured matrix:
//! fault scenarios against JOSHUA clusters of 2–4 heads, asserting the
//! paper's claims — "no interruption of service and no loss of state",
//! job state "maintained consistently at all head nodes", and continuous
//! service "as long as one head node survives".
//!
//! For each scenario we report: answered submissions (of the script),
//! the worst service gap seen by the client, total real job executions
//! (exactly-once check) and whether all surviving replicas agree.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::workload;
use jrs_bench::report;
use jrs_sim::{SimDuration, SimTime};

struct Outcome {
    scenario: String,
    heads: usize,
    answered: usize,
    expected: usize,
    max_gap_ms: f64,
    real_runs: u64,
    consistent: usize,
}

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn max_reply_gap(times: &[SimTime]) -> f64 {
    times
        .windows(2)
        .map(|w| w[1].since(w[0]).as_millis_f64())
        .fold(0.0, f64::max)
}

fn run_scenario(
    name: &str,
    heads: usize,
    jobs: usize,
    fault: impl FnOnce(&mut Cluster),
) -> Outcome {
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
    cfg.seed = 2006;
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst(jobs));
    fault(&mut c);
    c.run_until(secs((jobs as u64 + 30) * 6));
    // Reply arrival times come from the emitted records' order; reuse
    // latency + reconstruct arrival spacing via the world emission times.
    let raw = c.world.take_emitted::<jrs_pbs::SubmitRecord>();
    let times: Vec<SimTime> = raw.iter().map(|(t, _, _)| *t).collect();
    let answered = raw.len();
    let consistent = c.assert_replicas_consistent();
    Outcome {
        scenario: name.to_string(),
        heads,
        answered,
        expected: jobs,
        max_gap_ms: max_reply_gap(&times),
        real_runs: c.total_real_runs(),
        consistent,
    }
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    println!("E4 — failure matrix (JOSHUA, {jobs}-job burst, fault at t=2s)");
    println!();

    let mut outcomes = Vec::new();

    for heads in [2usize, 3, 4] {
        outcomes.push(run_scenario("single crash", heads, jobs, |c| {
            let n = c.head_nodes[0];
            c.world.schedule_at(secs(2), move |w| w.crash_node(n));
        }));
    }
    for heads in [3usize, 4] {
        outcomes.push(run_scenario("double simultaneous crash", heads, jobs, |c| {
            let (a, b) = (c.head_nodes[0], c.head_nodes[1]);
            c.world.schedule_at(secs(2), move |w| {
                w.crash_node(a);
                w.crash_node(b);
            });
        }));
    }
    outcomes.push(run_scenario("cascade to last survivor", 4, jobs, |c| {
        for (i, k) in [0usize, 1, 2].iter().enumerate() {
            let n = c.head_nodes[*k];
            c.world
                .schedule_at(secs(2 + 6 * i as u64), move |w| w.crash_node(n));
        }
    }));
    outcomes.push(run_scenario("voluntary leave", 3, jobs, |c| {
        let head = c.heads[1];
        c.world.schedule_at(secs(2), move |w| {
            w.inject(head, joshua_core::LeaveCmd);
        });
    }));
    outcomes.push({
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 2 });
        cfg.seed = 2006;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::burst(jobs));
        c.run_until(secs(10));
        let _ = c.add_joshua_head(); // join mid-burst
        c.run_until(secs((jobs as u64 + 30) * 6));
        let raw = c.world.take_emitted::<jrs_pbs::SubmitRecord>();
        let times: Vec<SimTime> = raw.iter().map(|(t, _, _)| *t).collect();
        Outcome {
            scenario: "join mid-burst".into(),
            heads: 2,
            answered: raw.len(),
            expected: jobs,
            max_gap_ms: max_reply_gap(&times),
            real_runs: c.total_real_runs(),
            consistent: c.assert_replicas_consistent(),
        }
    });

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let state_ok = o.answered == o.expected && o.real_runs == o.expected as u64;
            vec![
                o.scenario.clone(),
                o.heads.to_string(),
                format!("{}/{}", o.answered, o.expected),
                format!("{:.0}ms", o.max_gap_ms),
                format!("{}/{}", o.real_runs, o.expected),
                o.consistent.to_string(),
                if state_ok { "PASS".into() } else { "FAIL".into() },
            ]
        })
        .collect();
    report::table(
        &[
            "Scenario",
            "Heads",
            "Answered",
            "MaxGap",
            "RealRuns",
            "Agreeing",
            "Verdict",
        ],
        &rows,
    );
    let all_ok = outcomes
        .iter()
        .all(|o| o.answered == o.expected && o.real_runs == o.expected as u64);
    println!();
    println!(
        "{}",
        if all_ok {
            "All scenarios: continuous service, no lost state, exactly-once execution."
        } else {
            "SOME SCENARIOS FAILED — see table."
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
