//! E3 — Figure 12: availability / downtime comparison of single vs.
//! multiple head nodes (MTTF = 5000 h, MTTR = 72 h), analytic (the
//! paper's Equations 1–3) cross-checked by Monte Carlo simulation, plus
//! the correlated-failure extension the paper flags as a caveat.

use jrs_availability::{figure12, format_downtime, monte_carlo, McConfig, NodeReliability};
use jrs_bench::report;

fn main() {
    let node = NodeReliability::paper();
    println!(
        "E3 / Figure 12 — availability/downtime (MTTF={}h, MTTR={}h)",
        node.mttf_hours, node.mttr_hours
    );
    println!();

    let paper = ["5d 4h 21min", "1h 45min", "1min 30s", "1s"];
    let mut rows = Vec::new();
    for (row, paper_dt) in figure12(node, 4).iter().zip(paper) {
        // Monte Carlo cross-check (longer spans for the rarer outages).
        let mut mc_cfg = McConfig::paper(row.nodes);
        mc_cfg.span_hours = match row.nodes {
            1 => 100.0 * 8760.0,
            2 => 400.0 * 8760.0,
            _ => 2000.0 * 8760.0,
        };
        mc_cfg.trials = 8;
        let mc = monte_carlo(&mc_cfg);
        rows.push(vec![
            row.nodes.to_string(),
            format!("{:.8}%", row.availability * 100.0),
            row.nines.to_string(),
            format_downtime(row.downtime_hours),
            paper_dt.to_string(),
            format!("{}", format_downtime(mc.downtime_hours_per_year)),
        ]);
    }
    report::table(
        &["#", "Availability", "Nines", "Downtime/Year", "Paper", "MonteCarlo"],
        &rows,
    );

    println!();
    println!("Correlated-failure extension (rack outage MTTF=50000h, MTTR=24h):");
    println!("(the paper's caveat: location-dependent failures cap the benefit)");
    println!();
    let mut rows = Vec::new();
    for n in 1..=4u32 {
        let mut cfg = McConfig::paper(n);
        cfg.correlated_mttf_hours = 50_000.0;
        cfg.correlated_mttr_hours = 24.0;
        cfg.span_hours = 500.0 * 8760.0;
        cfg.trials = 8;
        let mc = monte_carlo(&cfg);
        rows.push(vec![
            n.to_string(),
            format!("{:.6}%", mc.availability * 100.0),
            format_downtime(mc.downtime_hours_per_year),
        ]);
    }
    report::table(&["#", "Availability (MC)", "Downtime/Year"], &rows);
}
