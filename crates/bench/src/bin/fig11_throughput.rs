//! E2 — Figure 11: job submission throughput, single vs. multiple head
//! nodes. Reproduces the paper's table:
//!
//! ```text
//! System          #   10 Jobs   50 Jobs   100 Jobs
//! TORQUE          1   0.93s     4.95s     10.18s
//! JOSHUA/TORQUE   1   1.32s     6.48s     14.08s
//! JOSHUA/TORQUE   2   2.68s     13.09s    26.37s
//! JOSHUA/TORQUE   3   2.93s     15.91s    30.03s
//! JOSHUA/TORQUE   4   3.62s     17.65s    33.32s
//! ```

use joshua_core::cluster::HaMode;
use jrs_bench::{report, throughput_experiment};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2006);
    let batches = [10usize, 50, 100];
    let paper: [(&str, [f64; 3]); 5] = [
        ("TORQUE", [0.93, 4.95, 10.18]),
        ("JOSHUA x1", [1.32, 6.48, 14.08]),
        ("JOSHUA x2", [2.68, 13.09, 26.37]),
        ("JOSHUA x3", [2.93, 15.91, 30.03]),
        ("JOSHUA x4", [3.62, 17.65, 33.32]),
    ];
    let modes = [
        HaMode::SingleHead,
        HaMode::Joshua { heads: 1 },
        HaMode::Joshua { heads: 2 },
        HaMode::Joshua { heads: 3 },
        HaMode::Joshua { heads: 4 },
    ];

    println!("E2 / Figure 11 — job submission throughput (batches of 10/50/100, seed {seed})");
    println!();

    let mut rows = Vec::new();
    for (mode, (_, paper_vals)) in modes.iter().zip(paper) {
        let r = throughput_experiment(*mode, &batches, seed);
        let mut row = vec![r.label.clone(), r.heads.to_string()];
        for ((_, measured), paper_v) in r.totals_s.iter().zip(paper_vals) {
            row.push(format!("{measured:.2}s ({paper_v:.2}s)"));
        }
        rows.push(row);
    }
    report::table(
        &[
            "System",
            "#",
            "10 Jobs (paper)",
            "50 Jobs (paper)",
            "100 Jobs (paper)",
        ],
        &rows,
    );
}
