//! Experiment runners shared by the table binaries and the Criterion
//! benches. Each runs a full virtual cluster and returns the measured
//! figures; all runs are deterministic for a given seed.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::workload;
use jrs_gcs::EngineKind;
use jrs_sim::metrics::DurationHistogram;
use jrs_sim::{SimDuration, SimTime};

/// One row of the Figure 10 (submission latency) table.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// System label.
    pub label: String,
    /// Head-node count.
    pub heads: usize,
    /// Mean submission latency (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Samples.
    pub count: usize,
}

/// One row of the Figure 11 (submission throughput) table.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// System label.
    pub label: String,
    /// Head-node count.
    pub heads: usize,
    /// Batch size → total wall time (s), in batch order.
    pub totals_s: Vec<(usize, f64)>,
}

fn build(mode: HaMode, seed: u64, engine: EngineKind) -> Cluster {
    let mut cfg = ClusterConfig::new(mode);
    cfg.seed = seed;
    cfg.group.engine = engine;
    Cluster::build(cfg)
}

/// Measure per-submission latency for `jobs` back-to-back trivial
/// submissions (the paper's Figure 10 workload).
pub fn latency_experiment(mode: HaMode, jobs: usize, seed: u64) -> LatencyRow {
    latency_experiment_with_engine(mode, jobs, seed, EngineKind::Sequencer)
}

/// Latency experiment with an explicit ordering engine (E5 ablation).
pub fn latency_experiment_with_engine(
    mode: HaMode,
    jobs: usize,
    seed: u64,
    engine: EngineKind,
) -> LatencyRow {
    let mut cluster = build(mode, seed, engine);
    cluster.spawn_client(workload::burst(jobs));
    // Generous horizon: jobs * (latency + execution) with slack.
    let horizon = SimTime::ZERO + SimDuration::from_secs((jobs as u64 + 10) * 5);
    cluster.run_until(horizon);
    let records = cluster.take_records();
    assert_eq!(
        records.len(),
        jobs,
        "{}: only {}/{} submissions answered",
        mode.label(),
        records.len(),
        jobs
    );
    let mut h = DurationHistogram::new();
    for r in &records {
        h.record(r.latency);
    }
    let s = h.summary();
    LatencyRow {
        label: mode.label(),
        heads: mode.head_count(),
        mean_ms: s.mean.as_millis_f64(),
        p50_ms: s.p50.as_millis_f64(),
        p99_ms: s.p99.as_millis_f64(),
        count: s.count,
    }
}

/// Measure total wall time to push a batch of submissions through the
/// queue (the paper's Figure 11 workload: 10/50/100 jobs).
pub fn throughput_experiment(mode: HaMode, batches: &[usize], seed: u64) -> ThroughputRow {
    let mut totals = Vec::new();
    for &batch in batches {
        let mut cluster = build(mode, seed, EngineKind::Sequencer);
        cluster.spawn_client(workload::burst(batch));
        let horizon = SimTime::ZERO + SimDuration::from_secs((batch as u64 + 10) * 5);
        cluster.run_until(horizon);
        let dones = cluster.take_dones();
        assert_eq!(dones.len(), 1, "{}: batch {batch} did not finish", mode.label());
        let total = dones[0].finished.since(dones[0].started);
        totals.push((batch, total.as_secs_f64()));
    }
    ThroughputRow {
        label: mode.label(),
        heads: mode.head_count(),
        totals_s: totals,
    }
}

/// Network-model ablation: run the Figure 10 workload with and without
/// shared-hub contention. Returns `(with_hub_ms, no_hub_ms)` mean latency.
pub fn hub_ablation(heads: usize, jobs: usize, seed: u64) -> (f64, f64) {
    let run = |hub: bool| {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
        cfg.seed = seed;
        if !hub {
            cfg.net.hub = None;
        }
        let mut cluster = Cluster::build(cfg);
        cluster.spawn_client(workload::burst(jobs));
        cluster.run_until(SimTime::ZERO + SimDuration::from_secs((jobs as u64 + 10) * 5));
        let records = cluster.take_records();
        assert_eq!(records.len(), jobs);
        records.iter().map(|r| r.latency.as_millis_f64()).sum::<f64>() / jobs as f64
    };
    (run(true), run(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_rows_are_deterministic() {
        let a = latency_experiment(HaMode::SingleHead, 5, 3);
        let b = latency_experiment(HaMode::SingleHead, 5, 3);
        assert_eq!(a.mean_ms, b.mean_ms);
        assert_eq!(a.count, 5);
    }

    #[test]
    fn joshua_latency_grows_with_heads() {
        let l1 = latency_experiment(HaMode::Joshua { heads: 1 }, 8, 5);
        let l2 = latency_experiment(HaMode::Joshua { heads: 2 }, 8, 5);
        let l4 = latency_experiment(HaMode::Joshua { heads: 4 }, 8, 5);
        assert!(l1.mean_ms < l2.mean_ms, "{} !< {}", l1.mean_ms, l2.mean_ms);
        assert!(l2.mean_ms < l4.mean_ms, "{} !< {}", l2.mean_ms, l4.mean_ms);
    }

    #[test]
    fn hub_contention_costs_latency() {
        // The half-duplex hub serializes the ordering multicasts; removing
        // it must not make things slower.
        let (with_hub, without) = hub_ablation(4, 8, 3);
        assert!(
            with_hub >= without,
            "hub {with_hub:.1}ms vs switched {without:.1}ms"
        );
    }

    #[test]
    fn throughput_scales_with_batch() {
        let t = throughput_experiment(HaMode::SingleHead, &[5, 10], 1);
        assert_eq!(t.totals_s.len(), 2);
        assert!(t.totals_s[1].1 > t.totals_s[0].1);
    }
}
