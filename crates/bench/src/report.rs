//! Tiny fixed-width table printer for paper-style output.

/// Print a table: header row + data rows, columns padded to content.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a ratio as the paper does ("+36ms / 37%").
pub fn overhead(base_ms: f64, value_ms: f64) -> String {
    let diff = value_ms - base_ms;
    let pct = diff / base_ms * 100.0;
    format!("{diff:+.0}ms / {pct:+.0}%")
}
