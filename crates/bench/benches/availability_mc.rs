//! Criterion bench: Monte Carlo availability simulation throughput
//! (simulated years per second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jrs_availability::{monte_carlo, McConfig};
use std::hint::black_box;

fn bench_mc(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability_mc_50y");
    g.sample_size(10);
    for nodes in [1u32, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut cfg = McConfig::paper(n);
                cfg.span_hours = 50.0 * 8760.0;
                cfg.trials = 2;
                black_box(monte_carlo(&cfg).availability)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
