//! Criterion bench: wall-clock cost of simulating the paper's Figure 10
//! experiment end-to-end — how fast the reproduction itself runs (events
//! per simulated submission across cluster sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::workload;
use jrs_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_submission_burst10");
    g.sample_size(10);
    for heads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(heads), &heads, |b, &h| {
            b.iter(|| {
                let mut cl = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: h }));
                cl.spawn_client(workload::burst(10));
                cl.run_until(SimTime::ZERO + SimDuration::from_secs(120));
                black_box(cl.take_records().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
