//! Criterion bench: PBS server command application throughput — the
//! deterministic state machine every replica drives.

use criterion::{criterion_group, criterion_main, Criterion};
use jrs_pbs::{FifoExclusive, FifoShared, JobSpec, PbsServerCore, ServerCmd};
use jrs_sim::SimTime;
use std::hint::black_box;

fn server(policy_shared: bool) -> PbsServerCore {
    let policy: Box<dyn jrs_pbs::Policy> =
        if policy_shared { Box::new(FifoShared) } else { Box::new(FifoExclusive) };
    PbsServerCore::new("bench", (0..16).map(|i| format!("c{i:02}")), policy)
}

fn bench_qsub(c: &mut Criterion) {
    c.bench_function("pbs_qsub_1000", |b| {
        b.iter_batched(
            || server(false),
            |mut s| {
                for i in 0..1000 {
                    let (_r, a) =
                        s.apply(SimTime::ZERO, &ServerCmd::Qsub(JobSpec::trivial(format!("j{i}"))));
                    black_box(a.len());
                }
                black_box(s.count_state(jrs_pbs::JobState::Queued))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_full_lifecycle(c: &mut Criterion) {
    c.bench_function("pbs_lifecycle_200_jobs", |b| {
        b.iter_batched(
            || server(true),
            |mut s| {
                use jrs_pbs::server::MomReport;
                let mut done = 0u64;
                for i in 0..200 {
                    let (_r, starts) =
                        s.apply(SimTime::ZERO, &ServerCmd::Qsub(JobSpec::trivial(format!("j{i}"))));
                    for a in starts {
                        if let jrs_pbs::ServerAction::Start { job, .. } = a {
                            let more = s.on_report(
                                SimTime::ZERO,
                                &MomReport::Finished { job, exit: 0 },
                            );
                            done += 1 + more.len() as u64;
                        }
                    }
                }
                black_box(done)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_snapshot(c: &mut Criterion) {
    c.bench_function("pbs_snapshot_restore_500_jobs", |b| {
        let mut s = server(false);
        for i in 0..500 {
            let _ = s.apply(SimTime::ZERO, &ServerCmd::Qsub(JobSpec::trivial(format!("j{i}"))));
        }
        let snap = s.snapshot();
        b.iter(|| {
            let mut fresh = server(false);
            fresh.restore(black_box(&snap));
            black_box(fresh.jobs_in_order().count())
        })
    });
}

criterion_group!(benches, bench_qsub, bench_full_lifecycle, bench_snapshot);
criterion_main!(benches);
