//! Criterion bench: raw cost of the group communication layer — ordering
//! a message through groups of 1–4 members (in-memory pump, no network
//! latency: measures the Rust implementation, not the simulated testbed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jrs_gcs::config::{EngineKind, GroupConfig};
use jrs_gcs::testkit::Pump;
use jrs_sim::ProcId;
use std::hint::black_box;

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("gcs_broadcast_roundtrip");
    g.sample_size(20);
    for members in [1u32, 2, 4] {
        for engine in [EngineKind::Sequencer, EngineKind::Token] {
            let label = format!("{engine:?}x{members}");
            g.bench_with_input(BenchmarkId::from_parameter(label), &members, |b, &n| {
                b.iter_batched(
                    || Pump::<u32>::group(n, GroupConfig::with_engine(engine)),
                    |mut pump| {
                        for i in 0..50u32 {
                            pump.broadcast(ProcId(i % n), i);
                        }
                        black_box(pump.delivered.len())
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_view_change(c: &mut Criterion) {
    c.bench_function("gcs_view_change_on_crash", |b| {
        b.iter_batched(
            || Pump::<u32>::group(4, GroupConfig::default()),
            |mut pump| {
                pump.crash(ProcId(0));
                pump.tick_for(
                    jrs_sim::SimDuration::from_millis(5),
                    jrs_sim::SimDuration::from_millis(1000),
                );
                black_box(pump.view_of(ProcId(1)).len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_ordering, bench_view_change);
criterion_main!(benches);
