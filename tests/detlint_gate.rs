//! Workspace determinism-lint gate.
//!
//! `cargo test` must fail if any replicated-state crate regresses on
//! the determinism/robustness rules (see `crates/detlint` and the
//! "Determinism invariants" section of DESIGN.md). The same check runs
//! in CI as `cargo run -p jrs-detlint -- check`; this test wires it
//! into the ordinary test loop so a violation never gets as far as a
//! pull request.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = jrs_detlint::check_workspace(root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    if !report.clean() {
        let mut msg = format!(
            "detlint found {} violation(s) — fix them or add a justified \
             `// detlint: allow(RULE): reason` pragma:\n",
            report.violations.len()
        );
        for v in &report.violations {
            msg.push_str(&format!("  {v}\n"));
        }
        panic!("{msg}");
    }
}
