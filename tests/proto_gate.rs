//! Workspace wire-protocol conformance gate.
//!
//! `cargo test` must fail if any codec's encode/decode symmetry, the
//! pinned discriminant tables in `proto.lock`, the send/handle matrix,
//! or the decode-side bounds discipline regress anywhere in the
//! workspace (see `crates/proto` and DESIGN.md §11). The same check
//! runs in CI as `cargo run -p jrs-proto -- check`; this test wires it
//! into the ordinary test loop so schema drift never gets as far as a
//! pull request.

use std::path::Path;

#[test]
fn workspace_is_proto_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = jrs_proto::ProtoConfig::workspace();
    let report = jrs_proto::check_workspace(&cfg, root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.codecs > 15 && report.use_sites > 50,
        "suspiciously small protocol model ({} codecs, {} use sites) — \
         extractor broken?",
        report.codecs,
        report.use_sites
    );
    if !report.clean() {
        let mut msg = format!(
            "jrs-proto found {} finding(s) — fix them, regenerate proto.lock \
             after a reviewed schema change, or add a justified \
             `// proto: allow(RULE): reason` pragma:\n",
            report.findings.len()
        );
        for f in &report.findings {
            msg.push_str(&format!("{f}\n"));
        }
        panic!("{msg}");
    }
}
