//! Model-checking gate: `cargo test` runs a bounded exhaustive sweep of
//! the GCS / jmutex protocol on every change. The same checker runs
//! deeper in CI (`cargo run -p jrs-mc -- check`); this gate keeps the
//! tight configurations — small enough to exhaust in seconds — in the
//! ordinary test loop so an interleaving bug never gets as far as a
//! pull request.
//!
//! What is covered:
//!
//! - clean sweeps: no reachable invariant violation on the unmutated
//!   protocol for both ordering engines, with and without a crash fault;
//! - seeded-bug detection: the `grant-on-forward` mutation (launch on
//!   forward instead of on verdict) must be caught as a duplicate
//!   launch, with a minimized, replayable counterexample;
//! - the jmutex-under-view-change regression: the mutex holder crashes
//!   between `jmutex` and `jdone`; the job must still launch exactly
//!   once (verdict redelivery by the responder). Disabling redelivery
//!   (`no-cover` mutation) must be caught as a lost launch;
//! - reduction sanity: the sleep-set (DPOR-lite) search explores at
//!   least 2x fewer states than the naive baseline on a stateless
//!   sweep, and the two searches agree on the verdict.

use jrs_mc::{
    check_from, minimize, replay, Action, Budget, McConfig, Mode, Mutation, Outcome, Search,
    StepResult, Violation, World,
};

use jrs_gcs::EngineKind;

fn cfg(engine: EngineKind, faults: u32, mutation: Mutation) -> McConfig {
    McConfig {
        procs: 3,
        submits: 1,
        faults,
        engine,
        mutation,
    }
}

fn assert_clean(cfg: McConfig, depth: u32) {
    let out = check_from(&World::new(cfg.clone()), depth, Mode::Dpor, Budget::unlimited());
    match out {
        Outcome::Clean(s) => {
            assert!(!s.truncated, "unbudgeted run cannot truncate");
            assert!(s.explored > 0);
        }
        Outcome::Violation { violation, trace, .. } => panic!(
            "{:?} engine, faults={}, depth={depth}: unexpected {violation:?} via {:?}",
            cfg.engine, cfg.faults, trace
        ),
    }
}

#[test]
fn sequencer_sweep_is_clean() {
    assert_clean(cfg(EngineKind::Sequencer, 0, Mutation::None), 7);
    assert_clean(cfg(EngineKind::Sequencer, 1, Mutation::None), 5);
}

#[test]
fn token_sweep_is_clean() {
    assert_clean(cfg(EngineKind::Token, 0, Mutation::None), 7);
    assert_clean(cfg(EngineKind::Token, 1, Mutation::None), 5);
}

#[test]
fn seeded_ordering_bug_is_caught_with_replayable_trace() {
    let config = cfg(EngineKind::Sequencer, 0, Mutation::GrantOnForward);
    let start = World::new(config);
    let Outcome::Violation { violation, trace, .. } =
        check_from(&start, 6, Mode::Dpor, Budget::unlimited())
    else {
        panic!("grant-on-forward duplicate launch not found");
    };
    assert!(
        matches!(violation, Violation::DuplicateLaunch { .. }),
        "expected duplicate launch, got {violation:?}"
    );
    // The minimized trace still replays to a violation, and removing any
    // single step loses it (1-minimality).
    let min = minimize(&start, &trace);
    assert!(min.len() <= trace.len());
    assert!(replay(&start, &min).is_some(), "minimized trace must replay");
    for i in 0..min.len() {
        let mut shorter = min.clone();
        shorter.remove(i);
        assert!(
            replay(&start, &shorter).is_none(),
            "trace not 1-minimal: step {i} is removable"
        );
    }
}

/// The mutex holder crashes between `jmutex` (ordered acquire) and
/// `jdone` (release): across every interleaving within the bound, the
/// job launches exactly once. The token engine is the interesting one —
/// all-to-all stability lets the other replicas deliver the acquire
/// before the granter does, which is exactly the window the responder's
/// verdict redelivery exists to cover.
#[test]
fn jmutex_holder_crash_launches_exactly_once() {
    // Scripted prefix: get the submission into the system, then explore
    // deliveries, crashes and ticks around it.
    let mut start = World::new(cfg(EngineKind::Token, 1, Mutation::None));
    assert!(matches!(start.apply(Action::Submit), StepResult::Ok));
    let out = check_from(&start, 6, Mode::Dpor, Budget::unlimited());
    let Outcome::Clean(stats) = out else {
        panic!("holder crash must not lose or duplicate the launch: {out:?}");
    };
    assert!(stats.explored > 0);
}

/// Same exploration with verdict redelivery disabled (`no-cover`
/// mutation): the checker must find the lost launch, proving the sweep
/// in [`jmutex_holder_crash_launches_exactly_once`] actually covers the
/// holder-crash window.
#[test]
fn no_cover_mutation_loses_a_launch() {
    let mut start = World::new(cfg(EngineKind::Token, 1, Mutation::NoCoverOnViewChange));
    assert!(matches!(start.apply(Action::Submit), StepResult::Ok));
    let Outcome::Violation { violation, trace, .. } =
        check_from(&start, 6, Mode::Dpor, Budget::unlimited())
    else {
        panic!("disabled verdict redelivery not detected");
    };
    assert!(
        matches!(violation, Violation::LostLaunch { .. }),
        "expected lost launch, got {violation:?}"
    );
    // The counterexample replays from the same prefix.
    assert!(replay(&start, &trace).is_some());
}

#[test]
fn dpor_reduces_states_at_least_2x_and_agrees_with_naive() {
    // Stateless (no-dedup) sweep: with the visited-state table off, the
    // sleep-set reduction's pruning is directly visible in the explored
    // count. 3 procs gives enough concurrent independent targets for a
    // >=2x reduction.
    let start = World::new(cfg(EngineKind::Sequencer, 0, Mutation::None));
    let naive = Search::new(Mode::Naive).no_dedup().run(&start, 7);
    let dpor = Search::new(Mode::Dpor).no_dedup().run(&start, 7);
    let (Outcome::Clean(n), Outcome::Clean(d)) = (naive, dpor) else {
        panic!("both sweeps must be clean");
    };
    assert!(
        n.explored >= 2 * d.explored,
        "DPOR-lite must prune >=2x on the stateless sweep (naive {} vs dpor {})",
        n.explored,
        d.explored
    );
    assert!(d.slept > 0);
}
