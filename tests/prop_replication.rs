//! Property-based test over the full stack: for random workloads and
//! random single-crash schedules, the JOSHUA cluster must preserve the
//! paper's invariants —
//!
//! 1. every submission from the (failover-capable) client is answered;
//! 2. every accepted job executes exactly once;
//! 3. all surviving established replicas hold consistent state.

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::workload;
use joshua_repro::sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn secs_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

proptest! {
    // Full-cluster runs are costly; keep the case count modest but the
    // schedule space wide.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn joshua_invariants_hold_under_random_crashes(
        heads in 2usize..5,
        jobs in 3usize..15,
        seed in 0u64..1000,
        crash_victim in 0usize..4,
        crash_at_ms in 200u64..8_000,
    ) {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
        cfg.seed = seed;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::burst(jobs));
        let victim = crash_victim % heads;
        // Never crash the last survivor's predecessors all at once — one
        // crash per run keeps at least one head alive for any `heads`.
        let node = c.head_nodes[victim];
        c.world.schedule_at(secs_ms(crash_at_ms), move |w| w.crash_node(node));
        c.run_until(SimTime::ZERO + SimDuration::from_secs((jobs as u64 + 40) * 6));

        let records = c.take_records();
        prop_assert_eq!(records.len(), jobs, "lost client commands");
        prop_assert_eq!(c.total_real_runs(), jobs as u64, "not exactly-once");
        let consistent = c.assert_replicas_consistent();
        prop_assert!(consistent >= heads - 1, "survivors missing: {}", consistent);
    }

    #[test]
    fn mixed_workload_replicas_agree(
        heads in 2usize..4,
        n in 5usize..25,
        wseed in 0u64..500,
    ) {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
        cfg.seed = wseed.wrapping_mul(31).wrapping_add(7);
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::mixed(n, wseed));
        c.run_until(SimTime::ZERO + SimDuration::from_secs((n as u64 + 20) * 6));
        let records = c.take_records();
        prop_assert_eq!(records.len(), n);
        prop_assert_eq!(c.assert_replicas_consistent(), heads);
    }
}
