//! Workspace-level integration tests: the full stack (simulation kernel →
//! group communication → PBS substrate → JOSHUA) exercised through the
//! umbrella crate's public API, covering the paper's functional test
//! matrix end to end.

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::{workload, JoshuaServer, LeaveCmd};
use joshua_repro::pbs::{CmdReply, JobId, JobState, ServerCmd};
use joshua_repro::sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn paper_functional_matrix_in_one_run() {
    // One long scenario covering: normal operation, a crash, a voluntary
    // leave, a join, and continued operation — state consistent at every
    // surviving head throughout (paper Section 5, functional testing).
    let mut c = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 4 }));
    c.spawn_client(workload::burst(25));

    let crash_node = c.head_nodes[2];
    c.world.schedule_at(secs(2), move |w| w.crash_node(crash_node));
    let leaver = c.heads[3];
    c.world.schedule_at(secs(8), move |w| w.inject(leaver, LeaveCmd));
    c.run_until(secs(30));
    let _replacement = c.add_joshua_head();
    c.run_until(secs(300));

    let records = c.take_records();
    assert_eq!(records.len(), 25, "continuous service through crash+leave+join");
    assert_eq!(c.total_real_runs(), 25, "exactly-once execution");
    assert!(c.assert_replicas_consistent() >= 3);
}

#[test]
fn all_pbs_verbs_replicate() {
    let mut c = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 3 }));
    let script = vec![
        ServerCmd::Qsub(joshua_repro::pbs::JobSpec::with_runtime(
            "long",
            SimDuration::from_secs(600),
        )),
        ServerCmd::Qsub(joshua_repro::pbs::JobSpec::trivial("queued")),
        ServerCmd::Qhold(JobId(2)),
        ServerCmd::Qstat(None),
        ServerCmd::Qrls(JobId(2)),
        ServerCmd::Qdel(JobId(1)),
        ServerCmd::Qstat(Some(JobId(1))),
    ];
    c.spawn_client(script);
    c.run_until(secs(120));
    let records = c.take_records();
    assert_eq!(records.len(), 7);
    assert!(matches!(records[2].reply, CmdReply::Held(JobId(2))));
    assert!(matches!(records[4].reply, CmdReply::Released(JobId(2))));
    assert!(matches!(records[5].reply, CmdReply::Deleted(JobId(1))));
    let CmdReply::Status(rows) = &records[6].reply else {
        panic!("qstat reply: {:?}", records[6].reply)
    };
    assert_eq!(rows[0].state, 'C');
    assert_eq!(c.assert_replicas_consistent(), 3);
    // The paper's prototype could not hold/release on joining replicas —
    // ours can: add a joiner and verify it sees the held/released history.
    let newcomer = c.add_joshua_head();
    c.run_until(secs(240));
    let j = c.world.proc_ref::<JoshuaServer>(newcomer).unwrap();
    assert!(j.is_established());
    assert_eq!(j.pbs().jobs_in_order().count(), 2);
    assert_eq!(c.assert_replicas_consistent(), 4);
}

#[test]
fn mom_obituary_bug_reproduction() {
    // With the paper's TORQUE bug enabled, a head crash can leave the
    // other heads with a job stuck in Running — exactly the defect the
    // paper reported to the TORQUE developers.
    let run = |bug: bool| {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 2 });
        cfg.mom_obituary_bug = bug;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::burst_with_runtime(3, SimDuration::from_secs(10)));
        // Crash head-0 (the first job's launch owner) while job 1 runs.
        let n0 = c.head_nodes[0];
        c.world.schedule_at(secs(3), move |w| w.crash_node(n0));
        c.run_until(secs(300));
        let stuck = c.joshua(1).pbs().count_state(JobState::Running)
            + c.joshua(1).pbs().count_state(JobState::Queued);
        (c.take_records().len(), stuck)
    };
    let (answered_fixed, stuck_fixed) = run(false);
    assert_eq!(answered_fixed, 3);
    assert_eq!(stuck_fixed, 0, "fixed moms report to every head");
    let (answered_bug, stuck_bug) = run(true);
    assert_eq!(answered_bug, 3, "submissions still work");
    assert!(
        stuck_bug > 0,
        "with the obituary bug, jobs owned by the dead head stay stuck"
    );
}

#[test]
fn high_throughput_hundred_jobs_four_heads() {
    // The paper's throughput scenario at full scale: 100 jobs, 4 heads.
    let mut c = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 4 }));
    c.spawn_client(workload::burst(100));
    c.run_until(secs(600));
    let dones = c.take_dones();
    assert_eq!(dones.len(), 1);
    let total = dones[0].finished.since(dones[0].started).as_secs_f64();
    // Paper: 33.32 s. Accept a generous band around it.
    assert!(
        (25.0..45.0).contains(&total),
        "100 jobs on 4 heads took {total:.1}s, expected ≈33s"
    );
    assert_eq!(c.total_real_runs(), 100);
    assert_eq!(c.assert_replicas_consistent(), 4);
}

#[test]
fn long_soak_with_failures_and_rejoins() {
    // The paper's Transis crashed after days of heavy traffic; our GCS
    // must survive a sustained stream with periodic membership churn.
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 3 });
    cfg.seed = 77;
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst(150));
    let n1 = c.head_nodes[1];
    c.world.schedule_at(secs(10), move |w| w.crash_node(n1));
    c.run_until(secs(60));
    let _ = c.add_joshua_head();
    c.run_until(secs(900));
    let records = c.take_records();
    assert_eq!(records.len(), 150);
    assert_eq!(c.total_real_runs(), 150);
    assert!(c.assert_replicas_consistent() >= 2);
}

#[test]
fn deterministic_full_cluster_runs() {
    let run = |seed| {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 2 });
        cfg.seed = seed;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::mixed(20, 5));
        let n0 = c.head_nodes[0];
        c.world.schedule_at(secs(2), move |w| w.crash_node(n0));
        c.run_until(secs(200));
        let lat: Vec<u64> = c.take_records().iter().map(|r| r.latency.as_nanos()).collect();
        (lat, c.world.events_processed())
    };
    assert_eq!(run(9), run(9), "same seed, same universe");
}
