//! Workspace call-graph analysis gate.
//!
//! `cargo test` must fail if the replication-boundary, nondeterminism-
//! reachability, panic-reachability, or protocol-exhaustiveness
//! invariants regress anywhere in the workspace (see `crates/flow` and
//! DESIGN.md §10). The same check runs in CI as
//! `cargo run -p jrs-flow -- check`; this test wires it into the
//! ordinary test loop so a leak never gets as far as a pull request.

use std::path::Path;

#[test]
fn workspace_is_flow_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = jrs_flow::FlowConfig::workspace();
    let report = jrs_flow::check_workspace(&cfg, root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.fns > 500 && report.edges > 1000,
        "suspiciously small call graph ({} fns, {} edges) — extractor broken?",
        report.fns,
        report.edges
    );
    if !report.clean() {
        let mut msg = format!(
            "jrs-flow found {} finding(s) — fix them or add a justified \
             `// flow: allow(RULE): reason` pragma:\n",
            report.findings.len()
        );
        for f in &report.findings {
            msg.push_str(&format!("{f}\n"));
        }
        panic!("{msg}");
    }
}
