//! High-throughput-computing sweep (the paper's computational-biology /
//! on-demand scenario): batches of short jobs pushed through 1–4 JOSHUA
//! heads, reporting per-job cost and the replication overhead curve —
//! a runnable, parameterized version of Figure 11.
//!
//! ```sh
//! cargo run --release --example throughput_sweep -- 50
//! ```

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::workload;
use joshua_repro::sim::{SimDuration, SimTime};

fn run(mode: HaMode, batch: usize) -> f64 {
    let mut cluster = Cluster::build(ClusterConfig::new(mode));
    cluster.spawn_client(workload::high_throughput(batch));
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs((batch as u64 + 20) * 5));
    let dones = cluster.take_dones();
    assert_eq!(dones.len(), 1, "{}: batch did not finish", mode.label());
    dones[0].finished.since(dones[0].started).as_secs_f64()
}

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);

    println!("High-throughput sweep: {batch} short jobs, closed-loop submission");
    println!();
    let base = run(HaMode::SingleHead, batch);
    println!(
        "{:<18} total {:>7.2}s   {:>6.1}ms/job",
        "TORQUE",
        base,
        base * 1000.0 / batch as f64
    );
    for heads in 1..=4usize {
        let total = run(HaMode::Joshua { heads }, batch);
        println!(
            "{:<18} total {:>7.2}s   {:>6.1}ms/job   overhead {:>5.1}%",
            format!("JOSHUA x{heads}"),
            total,
            total * 1000.0 / batch as f64,
            (total / base - 1.0) * 100.0
        );
    }
    println!();
    println!(
        "The paper's take: ~100 jobs in ~33s on 4 heads is an acceptable"
    );
    println!("trade-off for continuous availability (Section 5).");
}
