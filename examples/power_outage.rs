//! Durable replica state under the worst case the paper's architecture
//! leaves open: a machine-room power outage that takes down every head
//! node and every compute node at once.
//!
//! Each JOSHUA head keeps a checksummed WAL of applied commands plus
//! periodic snapshots on its local disk. The demo runs three acts:
//!
//! 1. **Warm restart** — one head crashes mid-burst, powers back on,
//!    recovers locally and fetches only the delta from the survivors.
//! 2. **Total blackout** — everything loses power mid-burst; on cold
//!    restart the heads reconcile their recovered states (most advanced
//!    wins), finished jobs stay finished, in-flight jobs relaunch
//!    exactly once, and the retrying client never observes data loss.
//! 3. **Torn write** — the power dies mid-WAL-append; recovery truncates
//!    to the last valid record and reports the damage.
//!
//! ```sh
//! cargo run --example power_outage
//! ```

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::config::PersistConfig;
use joshua_repro::core::workload;
use joshua_repro::pbs::JobState;
use joshua_repro::sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn durable_cluster(heads: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
    cfg.persist = PersistConfig::durable();
    Cluster::build(cfg)
}

fn warm_restart() {
    println!("== act 1: one head crashes and recovers from its own disk ==");
    let mut c = durable_cluster(3);
    c.spawn_client(workload::burst_with_runtime(20, SimDuration::from_millis(500)));
    c.run_until(secs(2));
    c.crash_head(1);
    c.run_until(secs(8));
    c.restart_joshua_head(1);
    c.run_until(secs(120));

    let answered = c.take_records().len();
    let h1 = c.joshua(1);
    let rec = h1.recovery_report().expect("recovery ran");
    let agree = h1.state_fingerprint() == c.joshua(0).state_fingerprint();
    println!("  submissions answered    : {answered}/20");
    println!("  jobs executed           : {}", c.total_real_runs());
    println!("  recovered from disk     : index {}", rec.recovered_index);
    println!("  WAL commands replayed   : {}", rec.wal_replayed);
    println!("  delta catch-ups applied : {}", h1.stats().catch_ups_applied);
    println!("  fingerprints agree      : {agree}");
    println!("  consistent replicas     : {}\n", c.assert_replicas_consistent());
}

fn blackout() {
    println!("== act 2: total power outage, cold restart ==");
    let mut c = durable_cluster(3);
    c.spawn_client(workload::burst_with_runtime(12, SimDuration::from_millis(400)));
    c.run_until(secs(3));
    let done_before = c.joshua(0).pbs().count_state(JobState::Complete);
    println!("  outage at t=3s          : {done_before}/12 jobs already complete");
    c.blackout();
    c.run_until(secs(6));
    c.cold_restart();
    c.run_until(secs(300));

    let answered = c.take_records().len();
    println!("  submissions answered    : {answered}/12 (client retried through the outage)");
    println!("  jobs relaunched         : {} (finished ones were not)", c.total_real_runs());
    for i in 0..3 {
        let h = c.joshua(i);
        let rec = h.recovery_report().expect("recovery ran");
        println!(
            "  head {i} recovery         : index {}, {} WAL commands, complete jobs now {}",
            rec.recovered_index,
            rec.wal_replayed,
            h.pbs().count_state(JobState::Complete),
        );
    }
    println!("  consistent replicas     : {}\n", c.assert_replicas_consistent());
}

fn torn_write() {
    println!("== act 3: power dies mid-WAL-append (torn write) ==");
    let mut c = durable_cluster(3);
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_millis(300)));
    c.run_until(secs(2));
    c.world.disk_mut(c.head_nodes[1]).arm_torn_write(4);
    c.run_until(secs(3));
    c.crash_head(1);
    c.run_until(secs(8));
    c.restart_joshua_head(1);
    c.run_until(secs(120));

    let answered = c.take_records().len();
    let h1 = c.joshua(1);
    let rec = h1.recovery_report().expect("recovery ran");
    println!("  submissions answered    : {answered}/10");
    println!("  torn tail truncated     : {}", rec.torn_tail_truncated);
    println!("  recovered index         : {}", rec.recovered_index);
    println!(
        "  fingerprints agree      : {}",
        h1.state_fingerprint() == c.joshua(0).state_fingerprint()
    );
    println!("  consistent replicas     : {}", c.assert_replicas_consistent());
}

fn main() {
    warm_restart();
    blackout();
    torn_write();
}
