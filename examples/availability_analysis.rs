//! The paper's availability analysis (Figure 12) as a library walk-through:
//! Equations 1–3 for 1–4 head nodes, a Monte Carlo cross-check, and the
//! correlated-failure caveat, plus a comparison against active/standby.
//!
//! ```sh
//! cargo run --release --example availability_analysis
//! ```

use joshua_repro::availability::{
    active_standby_availability, figure12, format_downtime, monte_carlo, nines,
    parallel_availability, McConfig, NodeReliability,
};

fn main() {
    let node = NodeReliability::paper();
    println!(
        "Per-node reliability: MTTF = {} h, MTTR = {} h → A_node = {:.4}% (Eq. 1)",
        node.mttf_hours,
        node.mttr_hours,
        node.availability() * 100.0
    );
    println!();
    println!("Figure 12 — symmetric active/active head nodes (Eq. 2 + Eq. 3):");
    for row in figure12(node, 4) {
        println!("  {row}");
    }

    println!();
    println!("Monte Carlo cross-check (2 heads, 400 simulated years):");
    let mut cfg = McConfig::paper(2);
    cfg.span_hours = 400.0 * 8760.0;
    let mc = monte_carlo(&cfg);
    println!(
        "  measured A = {:.6} ({} complete outages in {:.0} years) vs analytic {:.6}",
        mc.availability,
        mc.outages,
        mc.simulated_hours / 8760.0,
        parallel_availability(node, 2)
    );

    println!();
    println!("Active/standby with a 30 s failover per primary failure:");
    let asb = active_standby_availability(node, 30.0 / 3600.0);
    println!(
        "  A = {:.6} ({} nines) vs symmetric 2-head {:.6} ({} nines)",
        asb,
        nines(asb),
        parallel_availability(node, 2),
        nines(parallel_availability(node, 2))
    );

    println!();
    println!("The paper's caveat — correlated (rack/room) failures:");
    for n in [2u32, 4] {
        let mut cfg = McConfig::paper(n);
        cfg.correlated_mttf_hours = 50_000.0;
        cfg.correlated_mttr_hours = 24.0;
        cfg.span_hours = 300.0 * 8760.0;
        let mc = monte_carlo(&cfg);
        println!(
            "  {n} heads + rack outages: downtime/year ≈ {} (analytic without: {})",
            format_downtime(mc.downtime_hours_per_year),
            format_downtime(8760.0 * (1.0 - parallel_availability(node, n))),
        );
    }
    println!();
    println!("Redundancy buys nines against independent failures only;");
    println!("location-dependent failures need geographic distribution.");
}
