//! Rolling head-node maintenance with zero service downtime: drain one
//! JOSHUA head at a time (voluntary leave), replace it with a fresh node
//! that joins via state transfer, and keep a job stream flowing the whole
//! time — the paper's head-node replacement scenario
//! ("Replacement of failed head nodes or of head nodes that are about to
//! fail allows to sustain and guarantee a certain availability").
//!
//! ```sh
//! cargo run --example rolling_maintenance
//! ```

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::{workload, JoshuaServer, LeaveCmd};
use joshua_repro::sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 3 }));
    // A long stream of work: 40 submissions, closed loop.
    cluster.spawn_client(workload::burst(40));

    // Maintenance window 1: drain head-1 at t=5s.
    let h1 = cluster.heads[1];
    cluster.world.schedule_at(secs(5), move |w| {
        println!("-- maintenance: head-1 leaves gracefully");
        w.inject(h1, LeaveCmd);
    });
    cluster.run_until(secs(30));

    // Its replacement joins and receives state transfer.
    println!("-- replacement head joins the group");
    let replacement = cluster.add_joshua_head();
    cluster.run_until(secs(60));
    let r = cluster
        .world
        .proc_ref::<JoshuaServer>(replacement)
        .expect("replacement alive");
    println!(
        "   replacement established: {}, snapshot installed: {}, jobs known: {}",
        r.is_established(),
        r.stats().snapshots_installed,
        r.pbs().jobs_in_order().count()
    );

    // Maintenance window 2: now drain head-2.
    let h2 = cluster.heads[2];
    cluster.world.schedule_at(secs(61), move |w| {
        println!("-- maintenance: head-2 leaves gracefully");
        w.inject(h2, LeaveCmd);
    });
    cluster.run_until(secs(90));
    println!("-- second replacement joins");
    let _ = cluster.add_joshua_head();
    cluster.run_until(secs(300));

    let records = cluster.take_records();
    println!();
    println!("job stream: {}/40 submissions answered", records.len());
    println!("real executions: {}/40", cluster.total_real_runs());
    let heads = cluster.assert_replicas_consistent();
    println!("surviving established heads in agreement: {heads}");
    assert_eq!(records.len(), 40, "maintenance must not drop service");
    assert_eq!(cluster.total_real_runs(), 40);
    println!("rolling maintenance completed with zero service downtime ✓");
}
