//! Quickstart: build a 2-head JOSHUA cluster on the simulated testbed,
//! submit jobs, kill a head node mid-run, and watch the service continue
//! without interruption or state loss.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::workload;
use joshua_repro::pbs::{CmdReply, JobState};
use joshua_repro::sim::{SimDuration, SimTime};

fn main() {
    // Two symmetric active/active head nodes, two compute nodes, a
    // Fast-Ethernet-hub network — the paper's testbed in miniature.
    let mut cluster = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 2 }));

    // A user on the login node submits ten jobs back to back (jsub).
    cluster.spawn_client(workload::burst(10));

    // Pull the power on head-0 one second in (mid-burst).
    let victim = cluster.head_nodes[0];
    cluster
        .world
        .schedule_at(SimTime::ZERO + SimDuration::from_secs(1), move |w| {
            println!("!! head-0 crashes now");
            w.crash_node(victim);
        });

    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(180));

    // Every submission was acknowledged — some after a transparent
    // failover retry.
    let records = cluster.take_records();
    println!("submissions answered: {}/10", records.len());
    for r in &records {
        let CmdReply::Submitted(id) = &r.reply else { continue };
        println!(
            "  job {id}: latency {:>7.1}ms, attempts {}",
            r.latency.as_millis_f64(),
            r.attempts
        );
    }

    // The surviving head holds all ten jobs; each ran exactly once.
    let survivor = cluster.joshua(1);
    println!(
        "survivor view: {:?}, jobs complete: {}/10, real executions: {}",
        survivor.view().members,
        survivor.pbs().count_state(JobState::Complete),
        cluster.total_real_runs()
    );
    assert_eq!(records.len(), 10);
    assert_eq!(cluster.total_real_runs(), 10);
    println!("continuous availability: no interruption, no lost state ✓");
}
