//! Side-by-side failover behaviour of the four HA architectures from the
//! paper's Figures 1–4, under an identical head crash: single head,
//! active/standby, asymmetric active/active, and JOSHUA's symmetric
//! active/active.
//!
//! ```sh
//! cargo run --example failover_demo
//! ```

use joshua_repro::core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_repro::core::ha::ActiveStandbyHead;
use joshua_repro::core::workload;
use joshua_repro::sim::{SimDuration, SimTime};

const JOBS: usize = 12;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn demo(mode: HaMode) {
    println!("== {} ==", mode.label());
    let mut cluster = Cluster::build(ClusterConfig::new(mode));
    cluster.spawn_client(workload::burst_with_runtime(JOBS, SimDuration::from_secs(2)));
    let victim = cluster.head_nodes[0];
    cluster.world.schedule_at(secs(1), move |w| w.crash_node(victim));
    cluster.run_until(secs(400));

    let records = cluster.take_records();
    let answered = records.len();
    let retried = records.iter().filter(|r| r.attempts > 1).count();
    let executed = cluster.total_real_runs();
    let restarted: u64 = cluster
        .heads
        .iter()
        .filter_map(|p| cluster.world.proc_ref::<ActiveStandbyHead>(*p))
        .map(|h| h.restarted_jobs)
        .sum();

    println!("  submissions answered : {answered}/{JOBS}");
    println!("  needed failover retry: {retried}");
    println!("  jobs actually run    : {executed}/{JOBS}");
    if matches!(mode, HaMode::ActiveStandby) {
        println!("  jobs restarted       : {restarted}");
    }
    let verdict = match mode {
        _ if answered < JOBS => "head crash took the whole service down",
        HaMode::ActiveStandby => "failover interrupted service; running jobs restarted",
        _ if (executed as usize) < JOBS => "service continued but the dead head's jobs are lost",
        _ => "continuous availability: nothing lost, nothing restarted",
    };
    println!("  -> {verdict}");
    println!();
}

fn main() {
    println!("Identical fault everywhere: head-0 crashes at t=1s during a {JOBS}-job burst.");
    println!();
    demo(HaMode::SingleHead);
    demo(HaMode::ActiveStandby);
    demo(HaMode::Asymmetric { heads: 2 });
    demo(HaMode::Joshua { heads: 2 });
}
